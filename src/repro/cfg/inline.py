"""Whole-program call flattening.

Spatial computation instantiates every procedure in hardware; CASH compiles
whole programs to circuits. We realize that model by inlining every call
into the entry function: each static call site gets its own copy of the
callee's blocks, temps, and stack objects (one hardware instance per site).
Recursion therefore cannot be flattened and is rejected with
:class:`~repro.errors.InlineError`.
"""

from __future__ import annotations

import copy as _copy

from repro.errors import InlineError
from repro.frontend import ast
from repro.frontend import types as ty
from repro.cfg import ir
from repro.cfg.lower import LoweredProgram, simplify_cfg


def inline_program(program: LoweredProgram, entry: str,
                   max_instructions: int = 200_000) -> ir.Function:
    """Return a copy of ``entry`` with every call transitively inlined."""
    if entry not in program.functions:
        raise InlineError(f"no function named {entry!r}")
    _check_no_recursion(program, entry)
    inliner = _Inliner(program, max_instructions)
    result = inliner.flatten(entry)
    simplify_cfg(result)
    return result


def _check_no_recursion(program: LoweredProgram, entry: str) -> None:
    graph: dict[str, set[str]] = {}
    for name, func in program.functions.items():
        callees: set[str] = set()
        for _, instr in func.instructions():
            if isinstance(instr, ir.Call):
                callees.add(instr.callee)
        graph[name] = callees
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, path: list[str]) -> None:
        if name not in graph:
            raise InlineError(
                f"call to undefined function {name!r} (via {' -> '.join(path)})"
            )
        if state.get(name) == 1:
            return
        if state.get(name) == 0:
            cycle = " -> ".join(path + [name])
            raise InlineError(f"recursive call cycle: {cycle}")
        state[name] = 0
        for callee in graph[name]:
            visit(callee, path + [name])
        state[name] = 1

    visit(entry, [])


class _Inliner:
    def __init__(self, program: LoweredProgram, max_instructions: int):
        self.program = program
        self.max_instructions = max_instructions
        self.clone_count = 0
        # Fresh ids for per-call-site clones of callee stack objects; offset
        # far above frontend-assigned ids so the two ranges never collide.
        self.next_symbol_id = 1_000_000

    def flatten(self, name: str) -> ir.Function:
        result = self._clone_function(self.program.functions[name], suffix="")
        changed = True
        while changed:
            changed = False
            for block in list(result.blocks):
                for index, instr in enumerate(block.instrs):
                    if isinstance(instr, ir.Call):
                        self._inline_call(result, block, index, instr)
                        changed = True
                        break
                if changed:
                    break
            total = sum(len(b.instrs) for b in result.blocks)
            if total > self.max_instructions:
                raise InlineError(
                    f"inlined body exceeds {self.max_instructions} instructions"
                )
        simplify_cfg(result)
        return result

    # ------------------------------------------------------------------

    def _clone_function(self, func: ir.Function, suffix: str) -> ir.Function:
        clone = ir.Function(func.name, func.return_type)
        clone.independent_pairs = list(func.independent_pairs)
        temp_map: dict[ir.Temp, ir.Temp] = {}
        symbol_map: dict[ast.Symbol, ast.Symbol] = {}

        for symbol in func.stack_objects:
            symbol_map[symbol] = self._clone_symbol(symbol, suffix)
            clone.stack_objects.append(symbol_map[symbol])
        clone.independent_pairs = [
            (symbol_map.get(a, a), symbol_map.get(b, b))
            for a, b in func.independent_pairs
        ]

        def map_temp(temp: ir.Temp) -> ir.Temp:
            if temp not in temp_map:
                temp_map[temp] = clone.new_temp(temp.type)
            return temp_map[temp]

        def map_operand(operand: ir.Operand) -> ir.Operand:
            if isinstance(operand, ir.Temp):
                return map_temp(operand)
            if isinstance(operand, ir.SymAddr):
                return ir.SymAddr(symbol_map.get(operand.symbol, operand.symbol))
            return operand

        block_map: dict[ir.BasicBlock, ir.BasicBlock] = {}
        for block in func.blocks:
            block_map[block] = clone.new_block(block.name.rstrip("0123456789")
                                               + suffix)
        for block in func.blocks:
            target = block_map[block]
            for instr in block.instrs:
                target.instrs.append(_remap_instr(instr, map_operand, map_temp))
            target.terminator = _remap_terminator(block.terminator, map_operand,
                                                  block_map)
        for symbol, temp in func.params:
            clone.params.append((symbol, map_temp(temp)))
        assert func.entry is not None
        clone.entry = block_map[func.entry]
        return clone

    def _clone_symbol(self, symbol: ast.Symbol, suffix: str) -> ast.Symbol:
        if not suffix:
            return symbol
        clone = ast.Symbol(
            name=f"{symbol.name}{suffix}",
            type=symbol.type,
            kind=symbol.kind,
            is_const=symbol.is_const,
            address_taken=symbol.address_taken,
            is_written=symbol.is_written,
            init_values=_copy.copy(symbol.init_values),
        )
        clone.unique_id = self.next_symbol_id
        self.next_symbol_id += 1
        return clone

    # ------------------------------------------------------------------

    def _inline_call(self, caller: ir.Function, block: ir.BasicBlock,
                     index: int, call: ir.Call) -> None:
        callee = self.program.functions.get(call.callee)
        if callee is None:
            raise InlineError(f"call to undefined function {call.callee!r}")
        self.clone_count += 1
        suffix = f".{self.clone_count}"
        body = self._clone_into(caller, callee, suffix)

        # Split the containing block around the call.
        after = caller.new_block(f"after{suffix}")
        after.instrs = block.instrs[index + 1:]
        after.terminator = block.terminator
        block.instrs = block.instrs[:index]
        block.terminator = None

        # Bind arguments to the callee's parameter temps.
        for (symbol, temp), arg in zip(body.params, call.args):
            block.append(ir.Copy(temp, arg))
        block.terminator = ir.Jump(body.entry)

        # The cloned body's single Ret becomes a copy + jump to `after`.
        for body_block in body.blocks:
            term = body_block.terminator
            if isinstance(term, ir.Ret):
                body_block.terminator = None
                if call.dest is not None:
                    if term.value is None:
                        raise InlineError(
                            f"void function {call.callee} used for its value"
                        )
                    body_block.append(ir.Copy(call.dest, term.value))
                body_block.terminator = ir.Jump(after)

    def _clone_into(self, caller: ir.Function, callee: ir.Function,
                    suffix: str) -> "_ClonedBody":
        """Clone the callee's blocks/temps/objects into the caller."""
        temp_map: dict[ir.Temp, ir.Temp] = {}
        symbol_map: dict[ast.Symbol, ast.Symbol] = {}
        for symbol in callee.stack_objects:
            clone_sym = self._clone_symbol(symbol, suffix)
            symbol_map[symbol] = clone_sym
            caller.stack_objects.append(clone_sym)
        caller.independent_pairs.extend(
            (symbol_map.get(a, a), symbol_map.get(b, b))
            for a, b in callee.independent_pairs
        )

        def map_temp(temp: ir.Temp) -> ir.Temp:
            if temp not in temp_map:
                temp_map[temp] = caller.new_temp(temp.type)
            return temp_map[temp]

        def map_operand(operand: ir.Operand) -> ir.Operand:
            if isinstance(operand, ir.Temp):
                return map_temp(operand)
            if isinstance(operand, ir.SymAddr):
                return ir.SymAddr(symbol_map.get(operand.symbol, operand.symbol))
            return operand

        block_map: dict[ir.BasicBlock, ir.BasicBlock] = {}
        for block in callee.blocks:
            name = block.name.rstrip("0123456789")
            block_map[block] = caller.new_block(f"{callee.name}_{name}")
        for block in callee.blocks:
            target = block_map[block]
            for instr in block.instrs:
                target.instrs.append(_remap_instr(instr, map_operand, map_temp))
            target.terminator = _remap_terminator(block.terminator, map_operand,
                                                  block_map)
        assert callee.entry is not None
        params = [(symbol, map_temp(temp)) for symbol, temp in callee.params]
        blocks = [block_map[b] for b in callee.blocks]
        return _ClonedBody(entry=block_map[callee.entry], blocks=blocks,
                           params=params)


class _ClonedBody:
    def __init__(self, entry: ir.BasicBlock, blocks: list[ir.BasicBlock],
                 params: list[tuple[ast.Symbol, ir.Temp]]):
        self.entry = entry
        self.blocks = blocks
        self.params = params


def _remap_instr(instr: ir.Instr, map_operand, map_temp) -> ir.Instr:
    if isinstance(instr, ir.Copy):
        return ir.Copy(map_temp(instr.dest), map_operand(instr.src))
    if isinstance(instr, ir.BinOp):
        return ir.BinOp(map_temp(instr.dest), instr.op, map_operand(instr.lhs),
                        map_operand(instr.rhs), instr.type)
    if isinstance(instr, ir.UnOp):
        return ir.UnOp(map_temp(instr.dest), instr.op, map_operand(instr.src),
                       instr.type)
    if isinstance(instr, ir.CastOp):
        return ir.CastOp(map_temp(instr.dest), map_operand(instr.src),
                         instr.from_type, instr.to_type)
    if isinstance(instr, ir.Load):
        return ir.Load(map_temp(instr.dest), map_operand(instr.addr), instr.type)
    if isinstance(instr, ir.Store):
        return ir.Store(map_operand(instr.addr), map_operand(instr.src),
                        instr.type)
    if isinstance(instr, ir.Call):
        dest = map_temp(instr.dest) if instr.dest is not None else None
        return ir.Call(dest, instr.callee, [map_operand(a) for a in instr.args])
    raise InlineError(f"cannot clone instruction {instr!r}")


def _remap_terminator(term: ir.Terminator | None, map_operand,
                      block_map) -> ir.Terminator | None:
    if term is None:
        return None
    if isinstance(term, ir.Jump):
        return ir.Jump(block_map[term.target])
    if isinstance(term, ir.Branch):
        return ir.Branch(map_operand(term.cond), block_map[term.if_true],
                         block_map[term.if_false])
    if isinstance(term, ir.Ret):
        value = map_operand(term.value) if term.value is not None else None
        return ir.Ret(value)
    raise InlineError(f"cannot clone terminator {term!r}")
