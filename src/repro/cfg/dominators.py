"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from repro.cfg import ir


class DominatorTree:
    """Immediate dominators for every reachable block of a function."""

    def __init__(self, func: ir.Function):
        self.func = func
        self.rpo = func.reachable_blocks()
        self.rpo_index = {block: i for i, block in enumerate(self.rpo)}
        self.idom: dict[ir.BasicBlock, ir.BasicBlock] = {}
        self._compute()

    def _compute(self) -> None:
        entry = self.func.entry
        assert entry is not None
        preds = self.func.predecessors()
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                processed = [p for p in preds[block] if p in self.idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for pred in processed[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom.get(block) is not new_idom:
                    self.idom[block] = new_idom
                    changed = True

    def _intersect(self, a: ir.BasicBlock, b: ir.BasicBlock) -> ir.BasicBlock:
        while a is not b:
            while self.rpo_index[a] > self.rpo_index[b]:
                a = self.idom[a]
            while self.rpo_index[b] > self.rpo_index[a]:
                b = self.idom[b]
        return a

    def dominates(self, a: ir.BasicBlock, b: ir.BasicBlock) -> bool:
        """Does ``a`` dominate ``b``?"""
        entry = self.func.entry
        while True:
            if b is a:
                return True
            if b is entry:
                return False
            b = self.idom[b]
