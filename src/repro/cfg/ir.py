"""The three-address CFG intermediate representation.

Scalars that the paper's flow-insensitive analysis assigns to registers
(§3.3) live in virtual registers (:class:`Temp`); everything else is
accessed through explicit :class:`Load`/:class:`Store` instructions against
named memory objects. This is the representation the Pegasus builder
consumes and the sequential baseline interpreter executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.frontend import ast
from repro.frontend import types as ty
from repro.utils.ids import IdAllocator

# ---------------------------------------------------------------------------
# Operands


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    id: int
    type: ty.Type

    def __repr__(self) -> str:
        return f"t{self.id}"


@dataclass(frozen=True)
class Const:
    """An integer or float constant."""

    value: Union[int, float]
    type: ty.Type

    def __repr__(self) -> str:
        return f"{self.value}:{self.type}"


@dataclass(frozen=True)
class SymAddr:
    """The address of a memory object (global, string, or stack slot)."""

    symbol: ast.Symbol

    @property
    def type(self) -> ty.Type:
        base = self.symbol.type
        if isinstance(base, ty.ArrayType):
            return ty.PointerType(base.element, const=base.const)
        return ty.PointerType(base, const=self.symbol.is_const)

    def __repr__(self) -> str:
        return f"&{self.symbol.name}#{self.symbol.unique_id}"


Operand = Union[Temp, Const, SymAddr]


# ---------------------------------------------------------------------------
# Instructions

# Binary opcodes. Signed/unsigned behaviour is determined by the result (or
# operand) type carried on the instruction.
BINARY_OPS = frozenset(
    {"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr",
     "eq", "ne", "lt", "le", "gt", "ge"}
)
COMPARISON_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
UNARY_OPS = frozenset({"neg", "bnot", "lnot"})


class Instr:
    """Base class for non-terminator instructions."""

    location = None

    def defs(self) -> Optional[Temp]:
        return getattr(self, "dest", None)

    def uses(self) -> list[Operand]:
        raise NotImplementedError


@dataclass
class Copy(Instr):
    dest: Temp
    src: Operand

    def uses(self) -> list[Operand]:
        return [self.src]

    def __repr__(self) -> str:
        return f"{self.dest} = {self.src}"


@dataclass
class BinOp(Instr):
    dest: Temp
    op: str
    lhs: Operand
    rhs: Operand
    # The type arithmetic is performed in (operand type for comparisons).
    type: ty.Type = ty.INT

    def uses(self) -> list[Operand]:
        return [self.lhs, self.rhs]

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op}.{self.type} {self.lhs}, {self.rhs}"


@dataclass
class UnOp(Instr):
    dest: Temp
    op: str
    src: Operand
    type: ty.Type = ty.INT

    def uses(self) -> list[Operand]:
        return [self.src]

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op}.{self.type} {self.src}"


@dataclass
class CastOp(Instr):
    dest: Temp
    src: Operand
    from_type: ty.Type = ty.INT
    to_type: ty.Type = ty.INT

    def uses(self) -> list[Operand]:
        return [self.src]

    def __repr__(self) -> str:
        return f"{self.dest} = cast {self.src} : {self.from_type} -> {self.to_type}"


@dataclass
class Load(Instr):
    dest: Temp
    addr: Operand
    type: ty.Type = ty.INT  # type (and width) of the loaded value

    def uses(self) -> list[Operand]:
        return [self.addr]

    def __repr__(self) -> str:
        return f"{self.dest} = load.{self.type} [{self.addr}]"


@dataclass
class Store(Instr):
    addr: Operand
    src: Operand
    type: ty.Type = ty.INT

    def uses(self) -> list[Operand]:
        return [self.addr, self.src]

    def __repr__(self) -> str:
        return f"store.{self.type} [{self.addr}] = {self.src}"


@dataclass
class Call(Instr):
    dest: Optional[Temp]
    callee: str
    args: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Operand]:
        return list(self.args)

    def __repr__(self) -> str:
        prefix = f"{self.dest} = " if self.dest is not None else ""
        args = ", ".join(repr(a) for a in self.args)
        return f"{prefix}call {self.callee}({args})"


# ---------------------------------------------------------------------------
# Terminators


class Terminator:
    def successors(self) -> list["BasicBlock"]:
        raise NotImplementedError


@dataclass
class Jump(Terminator):
    target: "BasicBlock"

    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def __repr__(self) -> str:
        return f"jump {self.target.name}"


@dataclass
class Branch(Terminator):
    cond: Operand
    if_true: "BasicBlock"
    if_false: "BasicBlock"

    def successors(self) -> list["BasicBlock"]:
        return [self.if_true, self.if_false]

    def __repr__(self) -> str:
        return f"branch {self.cond} ? {self.if_true.name} : {self.if_false.name}"


@dataclass
class Ret(Terminator):
    value: Optional[Operand]

    def successors(self) -> list["BasicBlock"]:
        return []

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


# ---------------------------------------------------------------------------
# Blocks and functions


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    def __init__(self, name: str, block_id: int):
        self.name = name
        self.id = block_id
        self.instrs: list[Instr] = []
        self.terminator: Terminator | None = None

    def append(self, instr: Instr) -> None:
        if self.terminator is not None:
            raise ValueError(f"appending to terminated block {self.name}")
        self.instrs.append(instr)

    def successors(self) -> list["BasicBlock"]:
        if self.terminator is None:
            return []
        return self.terminator.successors()

    def __repr__(self) -> str:
        return f"<block {self.name}>"

    def dump(self) -> str:
        lines = [f"{self.name}:"]
        for instr in self.instrs:
            lines.append(f"  {instr!r}")
        lines.append(f"  {self.terminator!r}")
        return "\n".join(lines)


class Function:
    """A lowered function: blocks, virtual registers, and memory objects."""

    def __init__(self, name: str, return_type: ty.Type):
        self.name = name
        self.return_type = return_type
        self.blocks: list[BasicBlock] = []
        self.entry: BasicBlock | None = None
        # (source symbol, temp holding its incoming value) per parameter.
        self.params: list[tuple[ast.Symbol, Temp]] = []
        # Stack objects: locals that must live in memory (arrays,
        # address-taken scalars). Globals live on the program.
        self.stack_objects: list[ast.Symbol] = []
        self.independent_pairs: list[tuple[ast.Symbol, ast.Symbol]] = []
        self._temp_ids = IdAllocator()
        self._block_ids = IdAllocator()

    def new_temp(self, type_: ty.Type) -> Temp:
        return Temp(self._temp_ids.allocate(), type_)

    def new_block(self, hint: str) -> BasicBlock:
        block = BasicBlock(f"{hint}{self._block_ids.peek()}", self._block_ids.allocate())
        self.blocks.append(block)
        return block

    def predecessors(self) -> dict[BasicBlock, list[BasicBlock]]:
        """Map each block to its predecessor list, in block order."""
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def reachable_blocks(self) -> list[BasicBlock]:
        """Blocks reachable from entry, in reverse postorder."""
        assert self.entry is not None
        visited: set[int] = set()
        postorder: list[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            if block.id in visited:
                return
            visited.add(block.id)
            for succ in block.successors():
                visit(succ)
            postorder.append(block)

        visit(self.entry)
        return list(reversed(postorder))

    def remove_unreachable(self) -> None:
        reachable = {b.id for b in self.reachable_blocks()}
        self.blocks = [b for b in self.blocks if b.id in reachable]

    def instructions(self) -> Iterator[tuple[BasicBlock, Instr]]:
        for block in self.blocks:
            for instr in block.instrs:
                yield block, instr

    def dump(self) -> str:
        header = f"function {self.name}({', '.join(s.name for s, _ in self.params)})"
        return "\n".join([header] + [b.dump() for b in self.blocks])
