"""Hyperblock formation (§3.1).

A hyperblock is a maximal single-entry acyclic region of the CFG. CASH
collects multiple basic blocks into one hyperblock and converts it to
straight-line predicated code; the remaining control flow is only
inter-hyperblock transfer (loops and joins of loop exits).

The partition rule used here, on the forward CFG (back edges removed),
processing blocks in reverse postorder:

- the function entry and every loop header start a new hyperblock;
- a block joins its predecessors' hyperblock if *all* forward predecessors
  are in that same hyperblock and the block belongs to the same innermost
  loop (hyperblocks never span loop boundaries — an iteration boundary is
  exactly where merge/eta nodes must appear);
- otherwise it starts a new hyperblock (a join of several regions).

Static structure only is used (no profiling), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg import ir
from repro.cfg.dominators import DominatorTree
from repro.cfg.loops import Loop, LoopInfo


@dataclass
class Hyperblock:
    """An ordered set of basic blocks forming a single-entry acyclic region."""

    id: int
    entry: ir.BasicBlock
    blocks: list[ir.BasicBlock] = field(default_factory=list)
    loop: Loop | None = None  # innermost loop this hyperblock sits in

    @property
    def is_loop_body(self) -> bool:
        return self.loop is not None and self.loop.header is self.entry

    def __contains__(self, block: ir.BasicBlock) -> bool:
        return block in self._block_set

    @property
    def _block_set(self) -> set[ir.BasicBlock]:
        return set(self.blocks)

    def __repr__(self) -> str:
        names = ",".join(b.name for b in self.blocks)
        return f"Hyperblock#{self.id}({names})"

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass
class HyperblockPartition:
    """The full partition plus lookup tables used by the Pegasus builder."""

    func: ir.Function
    hyperblocks: list[Hyperblock]
    of_block: dict[ir.BasicBlock, Hyperblock]
    loop_info: LoopInfo
    dom: DominatorTree

    def successors(self, hyperblock: Hyperblock) -> list[tuple[ir.BasicBlock, ir.BasicBlock, Hyperblock]]:
        """Inter-hyperblock edges leaving ``hyperblock``.

        Returns (source block, target block, target hyperblock) triples in
        deterministic order; includes back edges to the hyperblock itself.
        """
        result = []
        for block in hyperblock.blocks:
            for succ in block.successors():
                target = self.of_block[succ]
                if target is not hyperblock or succ is hyperblock.entry:
                    result.append((block, succ, target))
        return result


def form_hyperblocks(func: ir.Function) -> HyperblockPartition:
    """Partition a function's blocks into hyperblocks."""
    dom = DominatorTree(func)
    loop_info = LoopInfo(func, dom)
    back_edges = loop_info.back_edges()
    rpo = _forward_rpo(func, back_edges)

    of_block: dict[ir.BasicBlock, Hyperblock] = {}
    hyperblocks: list[Hyperblock] = []
    preds = func.predecessors()

    for block in rpo:
        forward_preds = [
            p for p in preds[block] if (p, block) not in back_edges
        ]
        candidate: Hyperblock | None = None
        if block is not func.entry and not loop_info.is_header(block) and forward_preds:
            pred_hbs = {of_block[p] for p in forward_preds if p in of_block}
            if len(pred_hbs) == 1:
                hb = next(iter(pred_hbs))
                if hb.loop is loop_info.loop_of(block):
                    candidate = hb
        if candidate is None:
            candidate = Hyperblock(id=len(hyperblocks), entry=block,
                                   loop=loop_info.loop_of(block))
            hyperblocks.append(candidate)
        candidate.blocks.append(block)
        of_block[block] = candidate

    return HyperblockPartition(func=func, hyperblocks=hyperblocks,
                               of_block=of_block, loop_info=loop_info, dom=dom)


def _forward_rpo(func: ir.Function,
                 back_edges: set[tuple[ir.BasicBlock, ir.BasicBlock]]):
    """Reverse postorder over the CFG with back edges removed."""
    assert func.entry is not None
    visited: set[ir.BasicBlock] = set()
    postorder: list[ir.BasicBlock] = []

    def visit(block: ir.BasicBlock) -> None:
        if block in visited:
            return
        visited.add(block)
        for succ in block.successors():
            if (block, succ) not in back_edges:
                visit(succ)
        postorder.append(block)

    visit(func.entry)
    return list(reversed(postorder))
