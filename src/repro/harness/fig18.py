"""Figure 18 — memory operations removed by the optimizations.

The paper plots, per benchmark, the percentage of *static* loads and
stores removed (line graphs; up to ~28% of loads and ~8% of stores) and
the reduction of *dynamic* memory references (bars). We regenerate both
series by compiling each kernel unoptimized and fully optimized, counting
load/store nodes statically, and counting executed memory accesses in the
dataflow simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.cache import compiled, select_kernels
from repro.harness.sweep import compile_warm, gather_rows, run_sweep
from repro.observe.telemetry import telemetry_tags
from repro.orchestrate.dag import JobDAG
from repro.utils.tables import TextTable


@dataclass
class Fig18Row:
    name: str
    static_loads_before: int
    static_loads_after: int
    static_stores_before: int
    static_stores_after: int
    dynamic_before: int
    dynamic_after: int
    # Critical-path attribution (category -> cycles) for the none/full
    # runs, filled under attribution=True; sums to the run's cycle count.
    attribution_before: dict[str, int] = field(default_factory=dict)
    attribution_after: dict[str, int] = field(default_factory=dict)

    @property
    def static_loads_removed_pct(self) -> float:
        return _pct(self.static_loads_before, self.static_loads_after)

    @property
    def static_stores_removed_pct(self) -> float:
        return _pct(self.static_stores_before, self.static_stores_after)

    @property
    def dynamic_removed_pct(self) -> float:
        return _pct(self.dynamic_before, self.dynamic_after)


def _pct(before: int, after: int) -> float:
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


def _share(categories: dict[str, int]) -> str:
    total = sum(categories.values())
    if total == 0:
        return "-"
    return f"{100.0 * categories.get('memory', 0) / total:.1f}%"


def _kernel_row(kernel, wall_limit: float | None = None,
                attribution: bool = False) -> Fig18Row:
    base = compiled(kernel.name, "none")
    opt = compiled(kernel.name, "full")
    base_counts = base.program.static_counts()
    opt_counts = opt.program.static_counts()
    # Under an active TelemetrySession both runs persist tagged
    # RunRecords, keyed so repro-telemetry can diff sweeps over time.
    with telemetry_tags(figure="fig18", kernel=kernel.name):
        base_run = base.program.simulate(list(kernel.args),
                                         wall_limit=wall_limit,
                                         profile=attribution)
        opt_run = opt.program.simulate(list(kernel.args),
                                       wall_limit=wall_limit,
                                       profile=attribution)
    kernel.check(base_run.return_value)
    kernel.check(opt_run.return_value)
    row = Fig18Row(
        name=kernel.name,
        static_loads_before=base_counts["loads"],
        static_loads_after=opt_counts["loads"],
        static_stores_before=base_counts["stores"],
        static_stores_after=opt_counts["stores"],
        dynamic_before=base_run.memory_operations,
        dynamic_after=opt_run.memory_operations,
    )
    if attribution:
        row.attribution_before = \
            dict(base_run.profile.critical_path.by_category)
        row.attribution_after = \
            dict(opt_run.profile.critical_path.by_category)
    return row


AGGREGATE = "fig18/aggregate"


def build_dag(kernels=None, attribution=False) -> JobDAG:
    """The Figure 18 sweep as an explicit compile → cell → aggregate DAG.

    One cell per kernel, named ``fig18/<kernel>`` (the historical
    checkpoint key), depending on a per-kernel compile warm-up; a
    transient aggregate collects rows in kernel order.
    """
    dag = JobDAG("fig18")
    selected = select_kernels(kernels)
    cells = []
    for kernel in selected:
        dag.job(f"fig18/compile/{kernel.name}", compile_warm,
                kernel.name, ("none", "full"), category="compile")
        name = f"fig18/{kernel.name}"
        dag.job(name, _kernel_row, kernel,
                deps=(f"fig18/compile/{kernel.name}",),
                category="cell", attribution=attribution)
        cells.append(name)
    dag.job(AGGREGATE, gather_rows, deps=tuple(cells),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def figure18(kernels=None, runner=None, attribution=False,
             parallel=False, max_workers=None) -> list[Fig18Row]:
    """Rows for Figure 18; one per kernel.

    Declares the :func:`build_dag` job graph and runs it through the
    sweep scheduler. With a
    :class:`~repro.resilience.harness.ExperimentRunner`, each kernel
    runs as an isolated, journaled job: a crashed or timed-out kernel is
    dropped from the rows (and reported degraded on the runner) instead
    of aborting the batch. ``attribution=True`` profiles each run and
    fills the per-row critical-path category breakdowns.
    ``parallel=True`` fans the kernels out over the process-pool
    executor; workers share compilations through the on-disk cache, and
    row order is unchanged.
    """
    dag = build_dag(kernels, attribution)
    sweep = run_sweep(dag, runner=runner, parallel=parallel,
                      max_workers=max_workers)
    return sweep.value(AGGREGATE) or []


def render_rows(rows, attribution=False, degraded=()) -> str:
    """The Figure 18 table for already-computed ``rows``."""
    columns = ["Benchmark", "st.loads -%", "st.stores -%", "dyn.memops -%",
               "loads", "stores", "dyn before", "dyn after"]
    if attribution:
        columns += ["crit.mem none", "crit.mem full"]
    table = TextTable(
        columns,
        title="Figure 18: static and dynamic memory operations removed "
              "(full vs none)",
    )
    for row in rows:
        cells = [
            row.name,
            f"{row.static_loads_removed_pct:.1f}",
            f"{row.static_stores_removed_pct:.1f}",
            f"{row.dynamic_removed_pct:.1f}",
            f"{row.static_loads_before}->{row.static_loads_after}",
            f"{row.static_stores_before}->{row.static_stores_after}",
            row.dynamic_before,
            row.dynamic_after,
        ]
        if attribution:
            cells += [_share(row.attribution_before),
                      _share(row.attribution_after)]
        table.add_row(*cells)
    degraded = list(degraded)
    for outcome in degraded:
        table.add_row(outcome.key.split("/", 1)[-1],
                      *(["DEGRADED"] + ["-"] * (len(columns) - 2)))
    text = table.render()
    if degraded:
        text += "\n" + "\n".join(
            f"degraded {outcome.key}: {outcome.describe()}"
            for outcome in degraded)
    return text


def render(kernels=None, runner=None, attribution=False,
           parallel=False) -> str:
    rows = figure18(kernels, runner=runner, attribution=attribution,
                    parallel=parallel)
    return render_rows(rows, attribution=attribution,
                       degraded=runner.degraded if runner is not None
                       else ())
