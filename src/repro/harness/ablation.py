"""§7.3 ablation — per-optimization contribution and composition.

The paper's findings:

- the programs benefit most from pointer analysis during construction,
  token-edge disambiguation (§4.3), and induction-variable pipelining
  (§6.2) — together, the "Medium" set;
- the read-only split (§6.1) is almost never very profitable;
- loop decoupling (§6.3) applies to few loops;
- optimizations compose: the combined effect exceeds the product of the
  individual effects.

The ablation compiles each kernel under single-optimization pipelines and
under the combined pipeline and reports cycle counts plus applicability
statistics from the pass counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.cache import HARNESS_VERIFY, compiled, select_kernels
from repro.harness.sweep import compile_warm, gather_rows, run_sweep
from repro.observe.telemetry import telemetry_tags
from repro.orchestrate.dag import JobDAG
from repro.opt.context import OptContext
from repro.opt.passes import PassRunner, _fix_static_etas
from repro.pipeline.config import PipelineConfig
from repro.pipeline.driver import CompilerDriver
from repro.opt.cleanup import Cleanup
from repro.opt.constant_fold import ConstantFold
from repro.opt.dead_memops import DeadMemOps
from repro.opt.immutable import ImmutableLoads
from repro.opt.licm import LoopInvariantLoads
from repro.opt.load_forward import LoadAfterStore
from repro.opt.merge_ops import MergeEquivalent
from repro.opt.store_elim import StoreBeforeStore
from repro.opt.token_removal import TokenRemoval
from repro.sim.memsys import MemorySystem, REALISTIC_2PORT
from repro.utils.tables import TextTable


def _variants():
    from repro.looppipe.readonly import ReadOnlySplit
    from repro.looppipe.monotone import MonotonePipelining
    from repro.looppipe.decoupling import LoopDecoupling
    scalar = [ConstantFold(), Cleanup()]
    return {
        "scalar-only": scalar,
        "token-removal": scalar + [TokenRemoval(), DeadMemOps(), Cleanup()],
        "redundancy": scalar + [ImmutableLoads(), LoadAfterStore(),
                                StoreBeforeStore(), DeadMemOps(),
                                MergeEquivalent(), ConstantFold(), Cleanup()],
        "licm": scalar + [TokenRemoval(), LoopInvariantLoads(), Cleanup()],
        "monotone": scalar + [TokenRemoval(), MonotonePipelining(), Cleanup()],
        "readonly": scalar + [TokenRemoval(), ReadOnlySplit(), Cleanup()],
        "decoupling": scalar + [TokenRemoval(), LoopDecoupling(), Cleanup()],
    }


@dataclass
class AblationRow:
    name: str
    baseline_cycles: int
    cycles: dict[str, int] = field(default_factory=dict)
    full_cycles: int = 0
    applicability: dict[str, int] = field(default_factory=dict)

    def speedup(self, variant: str) -> float:
        cycles = self.cycles.get(variant, 0)
        return self.baseline_cycles / cycles if cycles else 0.0

    @property
    def full_speedup(self) -> float:
        return self.baseline_cycles / self.full_cycles if self.full_cycles else 0.0

    @property
    def product_of_parts(self) -> float:
        product = 1.0
        for variant in self.cycles:
            product *= max(1.0, self.speedup(variant))
        return product


def _fresh_unoptimized(kernel):
    """A private ``none``-level compile the variant passes may mutate.

    Cached programs are shared objects, so the in-place pass pipelines
    below must not run over them; verification still happens once at the
    end of each variant (the harness policy).
    """
    config = PipelineConfig.make(opt_level="none", verify=HARNESS_VERIFY)
    return CompilerDriver(config).compile(kernel.source, kernel.entry)


def _ablation_row(kernel, memsys_config=REALISTIC_2PORT) -> AblationRow:
    """One kernel's ablation: baseline, each variant pipeline, full.

    Module-level (and arguments picklable) so :func:`ablate` can fan the
    kernels out over worker processes.
    """
    baseline = compiled(kernel.name, "none").program
    with telemetry_tags(figure="ablation", kernel=kernel.name,
                        memsys=memsys_config.name):
        run = baseline.simulate(list(kernel.args),
                                memsys=MemorySystem(memsys_config))
        kernel.check(run.return_value)
        row = AblationRow(name=kernel.name, baseline_cycles=run.cycles)
        for variant, passes in _variants().items():
            program = _fresh_unoptimized(kernel)
            ctx = OptContext(program.build)
            runner = PassRunner(ctx, verify=HARNESS_VERIFY)
            for pass_ in passes:
                runner.run(pass_)
            _fix_static_etas(ctx)
            runner.finish()
            with telemetry_tags(variant=variant):
                result = program.simulate(list(kernel.args),
                                          memsys=MemorySystem(memsys_config))
            kernel.check(result.return_value)
            row.cycles[variant] = result.cycles
            for stat, count in ctx.stats.items():
                row.applicability[stat] = \
                    row.applicability.get(stat, 0) + count
        full = compiled(kernel.name, "full").program
        result = full.simulate(list(kernel.args),
                               memsys=MemorySystem(memsys_config))
        kernel.check(result.return_value)
        row.full_cycles = result.cycles
    return row


AGGREGATE = "ablation/aggregate"


def build_dag(kernels=None, memsys_config=REALISTIC_2PORT) -> JobDAG:
    """The §7.3 ablation as an explicit compile → cell → aggregate DAG.

    One cell per kernel named ``ablation/<kernel>``; the compile warm-up
    covers the cached ``none``/``full`` endpoints (variant pipelines
    compile privately inside the cell), and a transient aggregate
    collects rows in kernel order.
    """
    dag = JobDAG("ablation")
    cells = []
    for kernel in select_kernels(kernels):
        dag.job(f"ablation/compile/{kernel.name}", compile_warm,
                kernel.name, ("none", "full"), category="compile")
        name = f"ablation/{kernel.name}"
        dag.job(name, _ablation_row, kernel, memsys_config,
                deps=(f"ablation/compile/{kernel.name}",),
                category="cell")
        cells.append(name)
    dag.job(AGGREGATE, gather_rows, deps=tuple(cells),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def ablate(kernels=None, memsys_config=REALISTIC_2PORT,
           parallel=False, max_workers=None,
           runner=None) -> list[AblationRow]:
    """Ablation rows, one per kernel.

    Declares the :func:`build_dag` job graph and runs it through the
    sweep scheduler. ``parallel=True`` runs the kernels on the
    process-pool executor (the variant pipelines each mutate a private
    compilation, so kernels are independent and row order is unchanged);
    a :class:`~repro.resilience.harness.ExperimentRunner` journals and
    degrades per-kernel instead.
    """
    dag = build_dag(kernels, memsys_config)
    sweep = run_sweep(dag, runner=runner, parallel=parallel,
                      max_workers=max_workers)
    return sweep.value(AGGREGATE) or []


def render_rows(rows) -> str:
    """The ablation table for already-computed ``rows``."""
    variants = list(_variants())
    table = TextTable(
        ["Benchmark"] + [f"x {v}" for v in variants]
        + ["x full", "product of parts"],
        title="Ablation: speedup per optimization alone vs combined "
              "(realistic 2-port memory)",
    )
    for row in rows:
        table.add_row(
            row.name,
            *(f"{row.speedup(v):.2f}" for v in variants),
            f"{row.full_speedup:.2f}",
            f"{row.product_of_parts:.2f}",
        )
    return table.render()


def render(kernels=None, parallel=False) -> str:
    return render_rows(ablate(kernels, parallel=parallel))
