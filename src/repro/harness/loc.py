"""Table 1 — lines of code implementing each optimization.

The paper's point is compactness: each optimization is a small local graph
rewrite. We report our per-pass module sizes next to the paper's C++
numbers. Absolute values differ (different host languages and factoring);
the shape — every pass is a few dozen to a few hundred lines — carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.utils.tables import TextTable

# Paper rows (Table 1) and the module(s) implementing the same optimization.
TABLE1_ROWS = [
    ("Useless dependence removal", 160, ["opt/token_removal.py"]),
    ("Immutable loads", 70, ["opt/immutable.py"]),
    ("Dead-code elimination (incl. memory op)", 66,
     ["opt/dead_memops.py", "opt/cleanup.py"]),
    ("Load-after-load and store-after-store removal", 153,
     ["opt/merge_ops.py"]),
    ("Redundant load and store removal (PRE)", 94,
     ["opt/load_forward.py", "opt/store_elim.py"]),
    ("Transitive reduction of token edges", 61, ["pegasus/tokens.py"]),
    ("Loop-invariant code discovery (scalar and memory)", 74,
     ["opt/licm.py"]),
    ("Loop decoupling+monotone loops", 310,
     ["looppipe/decoupling.py", "looppipe/monotone.py",
      "looppipe/readonly.py", "looppipe/base.py"]),
]


@dataclass
class LocRow:
    optimization: str
    paper_loc: int
    our_loc: int
    modules: list[str]


def count_lines(relative: str) -> int:
    """Total line count of a module (comments and blanks included, like the
    paper's measurement)."""
    root = Path(__file__).resolve().parents[1]
    return sum(1 for _ in (root / relative).open())


def table1() -> list[LocRow]:
    rows = []
    for name, paper_loc, modules in TABLE1_ROWS:
        ours = sum(count_lines(m) for m in modules)
        rows.append(LocRow(name, paper_loc, ours, modules))
    return rows


def render() -> str:
    table = TextTable(["Optimization", "paper LOC (C++)", "ours LOC (Python)"],
                      title="Table 1: implementation size per optimization")
    for row in table1():
        table.add_row(row.optimization, row.paper_loc, row.our_loc)
    return table.render()
