"""Figure 19 — performance under optimization sets and memory systems.

The paper reports per-benchmark speedup for the "Medium" optimization set
(pointer analysis + token removal + induction-variable pipelining) and the
full set, across memory systems from perfect to a realistic two-level
hierarchy with 1/2/4 LSQ ports. Speedups are relative to the unoptimized
spatial implementation, which executes memory operations in the original
serialized token order.

The paper's headline shapes this regenerates:

- the Medium set captures most of the benefit (pipelining dominates pure
  redundancy removal);
- performance improves with memory ports, but even small bandwidth is
  used effectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.cache import compiled, select_kernels
from repro.harness.sweep import (
    compile_warm,
    gather_row_lists,
    gather_rows,
    run_sweep,
)
from repro.observe.telemetry import telemetry_tags
from repro.orchestrate.dag import JobDAG
from repro.sim.memsys import (
    MemoryConfig,
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_1PORT,
    REALISTIC_2PORT,
    REALISTIC_4PORT,
)
from repro.utils.tables import TextTable

MEMORY_SYSTEMS: tuple[MemoryConfig, ...] = (
    PERFECT_MEMORY, REALISTIC_1PORT, REALISTIC_2PORT, REALISTIC_4PORT,
)
LEVELS = ("medium", "full")


@dataclass
class Fig19Row:
    name: str
    memsys: str
    baseline_cycles: int
    cycles: dict[str, int] = field(default_factory=dict)
    # Per-level critical-path attribution (category -> cycles), filled
    # when the driver runs with attribution=True. The per-category sum
    # equals the level's cycle count (see repro.observe.critpath).
    attribution: dict[str, dict[str, int]] = field(default_factory=dict)

    def speedup(self, level: str) -> float:
        if self.cycles.get(level, 0) == 0:
            return 0.0
        return self.baseline_cycles / self.cycles[level]

    def category_share(self, level: str, category: str) -> float:
        categories = self.attribution.get(level)
        if not categories or self.cycles.get(level, 0) == 0:
            return 0.0
        return categories.get(category, 0) / self.cycles[level]


def _cell_row(kernel, config: MemoryConfig, levels,
              wall_limit: float | None = None,
              attribution: bool = False) -> Fig19Row:
    # Under an active TelemetrySession every simulate below persists a
    # tagged RunRecord, so a whole figure sweep becomes one queryable,
    # diffable run-set (repro-telemetry compare <old> <new>).
    with telemetry_tags(figure="fig19", kernel=kernel.name,
                        memsys=config.name):
        base = compiled(kernel.name, "none")
        baseline = base.program.simulate(list(kernel.args),
                                         memsys=MemorySystem(config),
                                         wall_limit=wall_limit)
        kernel.check(baseline.return_value)
        row = Fig19Row(name=kernel.name, memsys=config.name,
                       baseline_cycles=baseline.cycles)
        for level in levels:
            opt = compiled(kernel.name, level)
            run = opt.program.simulate(list(kernel.args),
                                       memsys=MemorySystem(config),
                                       wall_limit=wall_limit,
                                       profile=attribution)
            kernel.check(run.return_value)
            row.cycles[level] = run.cycles
            if attribution and run.profile is not None:
                row.attribution[level] = \
                    dict(run.profile.critical_path.by_category)
    return row


def _kernel_rows_batched(kernel, memory_systems, levels,
                         wall_limit: float | None = None) -> list[Fig19Row]:
    """All of one kernel's rows via batched codegen execution.

    One batch per optimization level runs every memory system's context
    through a single generated module — the module, its runner, and the
    laid-out memory image are built once per level instead of once per
    (level × memsys) cell.
    """
    systems = list(memory_systems)
    arg_sets = [list(kernel.args) for _ in systems]

    def level_runs(level):
        program = compiled(kernel.name, level).program
        runs = program.simulate_batch(
            arg_sets, memsys=[MemorySystem(config) for config in systems],
            wall_limit=wall_limit, engine="codegen")
        for run in runs:
            kernel.check(run.return_value)
        return runs

    with telemetry_tags(figure="fig19", kernel=kernel.name):
        baselines = level_runs("none")
        rows = [Fig19Row(name=kernel.name, memsys=config.name,
                         baseline_cycles=baseline.cycles)
                for config, baseline in zip(systems, baselines)]
        for level in levels:
            for row, run in zip(rows, level_runs(level)):
                row.cycles[level] = run.cycles
    return rows


AGGREGATE = "fig19/aggregate"


def build_dag(kernels=None, memory_systems=MEMORY_SYSTEMS, levels=LEVELS,
              attribution=False, batch=False) -> JobDAG:
    """The Figure 19 sweep as an explicit compile → cell → aggregate DAG.

    Cells keep the historical job names ``fig19/<kernel>/<memsys>`` so
    existing checkpoints remain valid resume identities; each depends on
    its kernel's ``fig19/compile/<kernel>`` warm-up job, and the
    transient aggregate collects rows in (kernel × memsys) order.

    ``batch=True`` replaces each kernel's per-memsys cells with one
    ``fig19/batch/<kernel>`` job running all memory systems through one
    generated codegen module per level (same rows, fewer jobs, less
    per-cell setup). Attribution requires per-run probes, which the
    batch path deliberately avoids — combining the two is an error.
    """
    if batch and attribution:
        raise ValueError("attribution requires per-cell probe runs; "
                         "run without batch=True")
    dag = JobDAG("fig19")
    selected = select_kernels(kernels)
    for kernel in selected:
        dag.job(f"fig19/compile/{kernel.name}", compile_warm,
                kernel.name, ("none", *levels), category="compile")
    cells = []
    if batch:
        for kernel in selected:
            name = f"fig19/batch/{kernel.name}"
            dag.job(name, _kernel_rows_batched, kernel,
                    tuple(memory_systems), levels,
                    deps=(f"fig19/compile/{kernel.name}",),
                    category="cell")
            cells.append(name)
        dag.job(AGGREGATE, gather_row_lists, deps=tuple(cells),
                category="aggregate", tolerant=True, pass_deps=True,
                transient=True)
        return dag
    for kernel in selected:
        for config in memory_systems:
            name = f"fig19/{kernel.name}/{config.name}"
            dag.job(name, _cell_row, kernel, config, levels,
                    deps=(f"fig19/compile/{kernel.name}",),
                    category="cell", attribution=attribution)
            cells.append(name)
    dag.job(AGGREGATE, gather_rows, deps=tuple(cells),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def figure19(kernels=None, memory_systems=MEMORY_SYSTEMS,
             levels=LEVELS, runner=None, attribution=False,
             parallel=False, max_workers=None,
             batch=False) -> list[Fig19Row]:
    """Rows for Figure 19; one per (kernel, memory system).

    Declares the :func:`build_dag` job graph and runs it through the
    sweep scheduler. With a
    :class:`~repro.resilience.harness.ExperimentRunner`, every cell is
    an isolated, journaled job keyed ``fig19/<kernel>/<memsys>``: a
    wedged cell degrades that row only, and a resumed run replays
    finished cells from the journal. ``attribution=True`` profiles each
    optimized run and fills ``row.attribution[level]`` with the
    critical-path category split. ``parallel=True`` fans the cells out
    over the process-pool executor; workers share compilations through
    the on-disk cache, and row order is unchanged. ``batch=True`` runs
    each kernel's memory systems as one batched codegen job (see
    :func:`build_dag`); rows and their order are identical.
    """
    dag = build_dag(kernels, memory_systems, levels, attribution,
                    batch=batch)
    sweep = run_sweep(dag, runner=runner, parallel=parallel,
                      max_workers=max_workers)
    return sweep.value(AGGREGATE) or []


def render_rows(rows, attribution=False, degraded=()) -> str:
    """The Figure 19 table for already-computed ``rows``.

    ``degraded`` is an iterable of failed outcomes (anything with
    ``.key`` and ``.describe()``) rendered as DEGRADED placeholders.
    """
    columns = (["Benchmark", "memory", "cycles none"]
               + [f"speedup {level}" for level in LEVELS])
    if attribution:
        columns += ["crit mem%", "crit compute%", "crit token%"]
    table = TextTable(
        columns,
        title="Figure 19: speedup over unoptimized spatial execution",
    )
    last = LEVELS[-1]
    for row in rows:
        cells = [row.name, row.memsys, row.baseline_cycles,
                 *(f"{row.speedup(level):.2f}" for level in LEVELS)]
        if attribution:
            cells += [f"{100.0 * row.category_share(last, cat):.1f}"
                      for cat in ("memory", "compute", "token")]
        table.add_row(*cells)
    degraded = list(degraded)
    for outcome in degraded:
        parts = outcome.key.split("/")
        table.add_row(parts[1] if len(parts) > 1 else outcome.key,
                      parts[2] if len(parts) > 2 else "-",
                      "DEGRADED", *("-" for _ in columns[3:]))
    text = table.render()
    if degraded:
        text += "\n" + "\n".join(
            f"degraded {outcome.key}: {outcome.describe()}"
            for outcome in degraded)
    return text


def render(kernels=None, memory_systems=MEMORY_SYSTEMS, runner=None,
           attribution=False, parallel=False) -> str:
    rows = figure19(kernels, memory_systems, runner=runner,
                    attribution=attribution, parallel=parallel)
    return render_rows(rows, attribution=attribution,
                       degraded=runner.degraded if runner is not None
                       else ())
