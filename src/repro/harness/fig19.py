"""Figure 19 — performance under optimization sets and memory systems.

The paper reports per-benchmark speedup for the "Medium" optimization set
(pointer analysis + token removal + induction-variable pipelining) and the
full set, across memory systems from perfect to a realistic two-level
hierarchy with 1/2/4 LSQ ports. Speedups are relative to the unoptimized
spatial implementation, which executes memory operations in the original
serialized token order.

The paper's headline shapes this regenerates:

- the Medium set captures most of the benefit (pipelining dominates pure
  redundancy removal);
- performance improves with memory ports, but even small bandwidth is
  used effectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.cache import compiled, select_kernels
from repro.sim.memsys import (
    MemoryConfig,
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_1PORT,
    REALISTIC_2PORT,
    REALISTIC_4PORT,
)
from repro.utils.tables import TextTable

MEMORY_SYSTEMS: tuple[MemoryConfig, ...] = (
    PERFECT_MEMORY, REALISTIC_1PORT, REALISTIC_2PORT, REALISTIC_4PORT,
)
LEVELS = ("medium", "full")


@dataclass
class Fig19Row:
    name: str
    memsys: str
    baseline_cycles: int
    cycles: dict[str, int] = field(default_factory=dict)

    def speedup(self, level: str) -> float:
        if self.cycles.get(level, 0) == 0:
            return 0.0
        return self.baseline_cycles / self.cycles[level]


def figure19(kernels=None, memory_systems=MEMORY_SYSTEMS,
             levels=LEVELS) -> list[Fig19Row]:
    rows = []
    for kernel in select_kernels(kernels):
        base = compiled(kernel.name, "none")
        for config in memory_systems:
            baseline = base.program.simulate(list(kernel.args),
                                             memsys=MemorySystem(config))
            kernel.check(baseline.return_value)
            row = Fig19Row(name=kernel.name, memsys=config.name,
                           baseline_cycles=baseline.cycles)
            for level in levels:
                opt = compiled(kernel.name, level)
                run = opt.program.simulate(list(kernel.args),
                                           memsys=MemorySystem(config))
                kernel.check(run.return_value)
                row.cycles[level] = run.cycles
            rows.append(row)
    return rows


def render(kernels=None, memory_systems=MEMORY_SYSTEMS) -> str:
    table = TextTable(
        ["Benchmark", "memory", "cycles none"]
        + [f"speedup {level}" for level in LEVELS],
        title="Figure 19: speedup over unoptimized spatial execution",
    )
    for row in figure19(kernels, memory_systems):
        table.add_row(row.name, row.memsys, row.baseline_cycles,
                      *(f"{row.speedup(level):.2f}" for level in LEVELS))
    return table.render()
