"""Compilation cache shared by the experiment drivers.

Compiling a kernel under a given configuration is deterministic, so the
drivers for different figures reuse one compilation per *full
configuration* — the content-addressed fingerprint of (source, entry,
opt level, unroll limit, points-to), not the old ``(name, level)`` pair
that silently collided when two configs of the same kernel differed in
``unroll_limit`` or ``entry_points_to``.

Two layers back the fingerprint:

- an in-process dict, so repeated ``compiled(...)`` calls in one run
  return the *same* :class:`~repro.api.CompiledProgram` object;
- the persistent on-disk :class:`~repro.pipeline.cache.CompilationCache`
  (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pegasus``), so figure
  regeneration across processes and sessions is warm-cache cheap.

The harness compiles at the ``final`` verification policy — the graph is
checked once per compilation rather than after all ~17 passes of the
``full`` pipeline — which measurably cuts cold compile time (see
``benchmarks/bench_pipeline_overhead.py``); the test suite keeps the
strict ``every-pass`` default through ``compile_minic``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import CompiledProgram
from repro.pipeline.cache import CompilationCache
from repro.pipeline.config import PipelineConfig
from repro.pipeline.driver import CompilerDriver
from repro.programs import Kernel, all_kernels, get_kernel

# Verification policy for harness compilations (tests use "every-pass").
HARNESS_VERIFY = "final"

# In-process layer: fingerprint -> KernelCompilation / CompiledProgram.
_MEMORY: dict[str, "KernelCompilation"] = {}
_SOURCE_MEMORY: dict[str, CompiledProgram] = {}

# A default subset keeps figure regeneration affordable; pass
# ``kernels="all"`` to a driver for the full suite.
DEFAULT_SUBSET = (
    "adpcm_e", "adpcm_d", "compress", "ijpeg", "jpeg_e", "jpeg_d",
    "li", "mesa", "mpeg2_d", "vortex",
)


@dataclass
class KernelCompilation:
    kernel: Kernel
    program: CompiledProgram
    level: str


def _disk() -> CompilationCache:
    # Resolved per call so a changed $REPRO_CACHE_DIR takes effect.
    return CompilationCache()


def _config(level: str, unroll_limit: int,
            entry_points_to: dict | None) -> PipelineConfig:
    return PipelineConfig.make(opt_level=level, verify=HARNESS_VERIFY,
                               unroll_limit=unroll_limit,
                               entry_points_to=entry_points_to)


def compiled(name: str, level: str, *, unroll_limit: int = 0,
             entry_points_to: dict | None = None,
             use_disk: bool = True) -> KernelCompilation:
    """Compile (or fetch) one kernel under one full configuration."""
    kernel = get_kernel(name)
    config = _config(level, unroll_limit, entry_points_to)
    disk = _disk() if use_disk else None
    fingerprint = config.fingerprint(kernel.source, kernel.entry)
    hit = _MEMORY.get(fingerprint)
    if hit is not None:
        return hit
    program = CompilerDriver(config, cache=disk).compile(kernel.source,
                                                         kernel.entry)
    compilation = KernelCompilation(kernel=kernel, program=program,
                                    level=level)
    _MEMORY[fingerprint] = compilation
    return compilation


def compile_source_cached(source: str, entry: str, level: str = "full", *,
                          unroll_limit: int = 0,
                          entry_points_to: dict | None = None,
                          use_disk: bool = True) -> CompiledProgram:
    """Driver-compiled program for raw source (e.g. the §2 example),
    backed by the same two cache layers as :func:`compiled`."""
    config = _config(level, unroll_limit, entry_points_to)
    fingerprint = config.fingerprint(source, entry)
    hit = _SOURCE_MEMORY.get(fingerprint)
    if hit is not None:
        return hit
    disk = _disk() if use_disk else None
    program = CompilerDriver(config, cache=disk).compile(source, entry)
    _SOURCE_MEMORY[fingerprint] = program
    return program


def warm(names=None, levels=("none", "medium", "full"), *,
         parallel: bool = True) -> int:
    """Pre-populate both cache layers for ``names`` × ``levels``.

    Cold artifacts are compiled in parallel worker processes
    (:mod:`repro.pipeline.parallel`); warm ones are just loaded.  Returns
    the number of compilations now held in memory.
    """
    from repro.pipeline.parallel import compile_kernels

    kernels = select_kernels(names)
    programs = compile_kernels([k.name for k in kernels], levels,
                               verify=HARNESS_VERIFY, parallel=parallel)
    for (name, level), program in programs.items():
        kernel = get_kernel(name)
        config = _config(level, 0, None)
        fingerprint = config.fingerprint(kernel.source, kernel.entry)
        _MEMORY.setdefault(fingerprint, KernelCompilation(
            kernel=kernel, program=program, level=level))
    return len(programs)


def clear_memory() -> None:
    """Drop the in-process layer (tests; the disk layer is untouched)."""
    _MEMORY.clear()
    _SOURCE_MEMORY.clear()


def select_kernels(kernels) -> list[Kernel]:
    """Resolve a kernel selection: None = default subset, "all", or names."""
    if kernels is None:
        return [get_kernel(name) for name in DEFAULT_SUBSET]
    if kernels == "all":
        return all_kernels()
    return [get_kernel(name) for name in kernels]
