"""Compilation cache shared by the experiment drivers.

Compiling a kernel at a given optimization level is deterministic; the
drivers for different figures reuse one compilation per (kernel, level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import CompiledProgram, compile_minic
from repro.programs import Kernel, all_kernels, get_kernel

_CACHE: dict[tuple[str, str], CompiledProgram] = {}

# A default subset keeps figure regeneration affordable; pass
# ``kernels="all"`` to a driver for the full suite.
DEFAULT_SUBSET = (
    "adpcm_e", "adpcm_d", "compress", "ijpeg", "jpeg_e", "jpeg_d",
    "li", "mesa", "mpeg2_d", "vortex",
)


@dataclass
class KernelCompilation:
    kernel: Kernel
    program: CompiledProgram
    level: str


def compiled(name: str, level: str) -> KernelCompilation:
    """Compile (or fetch) one kernel at one optimization level."""
    kernel = get_kernel(name)
    key = (name, level)
    if key not in _CACHE:
        _CACHE[key] = compile_minic(kernel.source, kernel.entry,
                                    opt_level=level)
    return KernelCompilation(kernel=kernel, program=_CACHE[key], level=level)


def select_kernels(kernels) -> list[Kernel]:
    """Resolve a kernel selection: None = default subset, "all", or names."""
    if kernels is None:
        return [get_kernel(name) for name in DEFAULT_SUBSET]
    if kernels == "all":
        return all_kernels()
    return [get_kernel(name) for name in kernels]
