"""Shared sweep plumbing for the figure harnesses.

Every harness in this package declares its work as a
:class:`~repro.orchestrate.dag.JobDAG` — per-kernel ``compile`` jobs
warm the on-disk cache, ``cell`` jobs measure, and one ``aggregate``
collects the rows in declaration order. :func:`run_sweep` is the single
execution entry point: it picks the executor (inline by default, the
process pool under ``parallel=True``), routes runner-driven runs through
the runner's scheduler policy (name-keyed journal, retries, wall limit),
and re-raises job failures for plain calls so ``figure19()`` et al. keep
their historical raise-through behavior.
"""

from __future__ import annotations

from repro.orchestrate.dag import JobDAG
from repro.orchestrate.executors import make_executor
from repro.orchestrate.scheduler import Scheduler, SweepResult


def compile_warm(kernel_name: str, levels) -> None:
    """Compile job: ensure ``kernel_name``'s artifacts exist at ``levels``.

    Cells call :func:`~repro.harness.cache.compiled` themselves; this job
    only front-loads the compilations so parallel cells start from a warm
    on-disk cache instead of each compiling the same kernel.
    """
    from repro.harness.cache import compiled
    for level in levels:
        compiled(kernel_name, level)


def gather_rows(*, deps) -> list:
    """Aggregate job: dependency values in declaration order, sans holes.

    Runs ``tolerant`` + ``pass_deps`` + ``transient``: degraded cells
    appear as ``None`` and are dropped, so a partially-degraded sweep
    still aggregates — the scheduler reports the holes.
    """
    return [row for row in deps if row is not None]


def gather_row_lists(*, deps) -> list:
    """Aggregate for batched cells: each dependency yields a row *list*
    (one batched job covers several sweep cells); flattened in
    declaration order, degraded jobs dropped."""
    rows = []
    for chunk in deps:
        if chunk is not None:
            rows.extend(chunk)
    return rows


def run_sweep(dag: JobDAG, *, runner=None, parallel: bool = False,
              max_workers: int | None = None, executor=None,
              journal=None, retries: int = 0, backoff: float = 0.0,
              wall_limit: float | None = None, resume: bool = True,
              strict: bool | None = None) -> SweepResult:
    """Execute one harness DAG under the appropriate policy.

    With ``runner`` (an :class:`~repro.resilience.harness.
    ExperimentRunner`), the runner's scheduler runs the DAG — its
    journal, retry budget, and wall limit apply, jobs are journaled by
    *name* (so legacy checkpoint keys stay the resume identity), and the
    measurement outcomes are absorbed into ``runner.outcomes``.

    Without a runner, ``parallel=True`` selects the process-pool
    executor (``max_workers`` caps it); otherwise jobs run inline.
    ``strict`` controls failure handling: ``True`` re-raises the first
    failed job's exception (the historical behavior of the plain figure
    functions), ``False`` returns the degraded sweep for the caller to
    report. Default: strict exactly when there is no runner and no
    journal — ad-hoc calls raise, orchestrated runs degrade gracefully.
    """
    if runner is not None:
        sweep = runner.scheduler(dag).run(resume=resume)
        runner.absorb(sweep)
        return sweep
    if executor is None and parallel:
        executor = make_executor("process", max_workers=max_workers)
    scheduler = Scheduler(dag, executor=executor, journal=journal,
                          retries=retries, backoff=backoff,
                          wall_limit=wall_limit)
    sweep = scheduler.run(resume=resume)
    if strict is None:
        strict = journal is None
    if strict:
        for name in sweep.order:
            result = sweep.results[name]
            if result.exception is not None:
                raise result.exception
    return sweep
