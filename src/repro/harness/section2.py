"""The §2 motivating example: seven compilers, one function.

The paper compiles ``f`` with gcc, Sun WorkShop, DEC CC, MIPSpro, SGI ORC,
IBM AIX cc, and CASH; only CASH and the AIX compiler remove all three
useless accesses to the temporary ``a[i]`` (two stores and one load). We
can't rerun 2003-era commercial compilers, so the comparison is restated
as: the unoptimized graph carries the accesses a conventional compiler
retains; the full pipeline removes exactly the paper's two stores and one
load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.cache import compile_source_cached
from repro.harness.sweep import run_sweep
from repro.observe.telemetry import telemetry_tags
from repro.orchestrate.dag import JobDAG
from repro.utils.tables import TextTable

SECTION2_SOURCE = """
void f(unsigned *p, unsigned a[], int i)
{
    if (p) a[i] += *p;
    else a[i] = 1;
    a[i] <<= a[i+1];
}
"""


@dataclass
class Section2Result:
    loads_before: int
    loads_after: int
    stores_before: int
    stores_after: int

    @property
    def loads_removed(self) -> int:
        return self.loads_before - self.loads_after

    @property
    def stores_removed(self) -> int:
        return self.stores_before - self.stores_after


def _section2_job() -> Section2Result:
    """The whole §2 measurement as one cell job (module-level so it can
    run on any executor; ``compile_source_cached`` is resolved through
    the module at call time)."""
    # Tag so compile records land under "section2" in the telemetry
    # store when a session is active (cache hits record too).
    with telemetry_tags(figure="section2", kernel="f"):
        base = compile_source_cached(SECTION2_SOURCE, "f", level="none")
        full = compile_source_cached(SECTION2_SOURCE, "f", level="full")
    before = base.static_counts()
    after = full.static_counts()
    return Section2Result(
        loads_before=before["loads"],
        loads_after=after["loads"],
        stores_before=before["stores"],
        stores_after=after["stores"],
    )


def build_dag() -> JobDAG:
    """A one-job DAG: the measurement is the cell ``section2``."""
    dag = JobDAG("section2")
    dag.job("section2", _section2_job, category="cell")
    return dag


def section2(runner=None) -> Section2Result:
    """The §2 measurement, optionally as one journaled, isolated job."""
    sweep = run_sweep(build_dag(), runner=runner)
    return sweep.value("section2")


def render_result(result: Section2Result) -> str:
    """The §2 table for an already-computed result."""
    table = TextTable(["Configuration", "loads", "stores"],
                      title="Section 2 example: accesses to the temporary "
                            "a[i] (paper: CASH removes 2 stores + 1 load)")
    table.add_row("unoptimized (what most 2003 compilers retain)",
                  result.loads_before, result.stores_before)
    table.add_row("CASH-equivalent full pipeline",
                  result.loads_after, result.stores_after)
    table.add_row("removed", result.loads_removed, result.stores_removed)
    return table.render()


def render(runner=None) -> str:
    result = section2(runner=runner)
    if result is None:
        failed = runner.degraded[-1]
        return f"Section 2 example: DEGRADED — {failed.describe()}"
    return render_result(result)
