"""Experiment drivers: one module per table/figure of the paper.

- :mod:`repro.harness.loc` — Table 1 (implementation size per optimization);
- :mod:`repro.harness.table2` — Table 2 (program statistics, pragmas);
- :mod:`repro.harness.fig18` — Figure 18 (static and dynamic memory-op
  reduction per benchmark);
- :mod:`repro.harness.fig19` — Figure 19 (speedup per optimization set and
  memory system);
- :mod:`repro.harness.section2` — the §2 seven-compiler comparison;
- :mod:`repro.harness.ablation` — the §7.3 per-optimization findings.

Each driver returns plain data plus a rendered text table, so the pytest
benchmarks and the examples can share them.

Compilations are shared through :mod:`repro.harness.cache` — an
in-process layer over the persistent content-addressed store of
:mod:`repro.pipeline.cache` — and run at the ``final`` verification
policy (checked once per compile instead of after every pass).
"""

from repro.harness.cache import (
    KernelCompilation,
    compile_source_cached,
    compiled,
    warm,
)

__all__ = ["KernelCompilation", "compile_source_cached", "compiled", "warm"]
