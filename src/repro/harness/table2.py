"""Table 2 — statistics of the compiled programs.

Per benchmark: number of functions compiled, source lines, dynamic
run-time share covered, and the number of ``#pragma independent``
annotations. The paper compiled selected functions of each benchmark and
reported what fraction of run time they cover; our kernels are compiled
whole, so coverage is 100% by construction and we report the dynamic
instruction count that corresponds to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.cache import compiled, select_kernels
from repro.harness.sweep import compile_warm, gather_rows, run_sweep
from repro.orchestrate.dag import JobDAG
from repro.utils.tables import TextTable


@dataclass
class Table2Row:
    name: str
    family: str
    functions: int
    lines: int
    pragmas: int
    dynamic_instructions: int
    coverage_percent: float


def _kernel_row(kernel) -> Table2Row:
    """One kernel's statistics row (module-level so it pickles into
    pool workers)."""
    compilation = compiled(kernel.name, "none")
    oracle = compilation.program.run_sequential(list(kernel.args))
    kernel.check(oracle.return_value)
    return Table2Row(
        name=kernel.name,
        family=kernel.family,
        functions=len(compilation.program.lowered.functions),
        lines=kernel.source_lines,
        pragmas=kernel.pragma_count,
        dynamic_instructions=oracle.instructions,
        coverage_percent=100.0,
    )


AGGREGATE = "table2/aggregate"


def build_dag(kernels=None) -> JobDAG:
    """Table 2 as an explicit compile → cell → aggregate DAG."""
    dag = JobDAG("table2")
    cells = []
    for kernel in select_kernels(kernels):
        dag.job(f"table2/compile/{kernel.name}", compile_warm,
                kernel.name, ("none",), category="compile")
        name = f"table2/{kernel.name}"
        dag.job(name, _kernel_row, kernel,
                deps=(f"table2/compile/{kernel.name}",), category="cell")
        cells.append(name)
    dag.job(AGGREGATE, gather_rows, deps=tuple(cells),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def table2(kernels=None, runner=None, parallel=False,
           max_workers=None) -> list[Table2Row]:
    dag = build_dag(kernels)
    sweep = run_sweep(dag, runner=runner, parallel=parallel,
                      max_workers=max_workers)
    return sweep.value(AGGREGATE) or []


def render_rows(rows) -> str:
    """The Table 2 table for already-computed ``rows``."""
    table = TextTable(
        ["Benchmark", "Funcs", "Lines", "Pragmas", "Dyn. instr", "Time %"],
        title="Table 2: program statistics (paper: selected functions of "
              "MediaBench/SPECint95; here: whole from-scratch kernels)",
    )
    for row in rows:
        table.add_row(row.name, row.functions, row.lines, row.pragmas,
                      row.dynamic_instructions, row.coverage_percent)
    table.add_row("Total", sum(r.functions for r in rows),
                  sum(r.lines for r in rows), sum(r.pragmas for r in rows),
                  sum(r.dynamic_instructions for r in rows), "")
    return table.render()


def render(kernels=None) -> str:
    return render_rows(table2(kernels))
