"""Table 2 — statistics of the compiled programs.

Per benchmark: number of functions compiled, source lines, dynamic
run-time share covered, and the number of ``#pragma independent``
annotations. The paper compiled selected functions of each benchmark and
reported what fraction of run time they cover; our kernels are compiled
whole, so coverage is 100% by construction and we report the dynamic
instruction count that corresponds to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.cache import compiled, select_kernels
from repro.utils.tables import TextTable


@dataclass
class Table2Row:
    name: str
    family: str
    functions: int
    lines: int
    pragmas: int
    dynamic_instructions: int
    coverage_percent: float


def table2(kernels=None) -> list[Table2Row]:
    rows = []
    for kernel in select_kernels(kernels):
        compilation = compiled(kernel.name, "none")
        oracle = compilation.program.run_sequential(list(kernel.args))
        kernel.check(oracle.return_value)
        rows.append(Table2Row(
            name=kernel.name,
            family=kernel.family,
            functions=len(compilation.program.lowered.functions),
            lines=kernel.source_lines,
            pragmas=kernel.pragma_count,
            dynamic_instructions=oracle.instructions,
            coverage_percent=100.0,
        ))
    return rows


def render(kernels=None) -> str:
    table = TextTable(
        ["Benchmark", "Funcs", "Lines", "Pragmas", "Dyn. instr", "Time %"],
        title="Table 2: program statistics (paper: selected functions of "
              "MediaBench/SPECint95; here: whole from-scratch kernels)",
    )
    rows = table2(kernels)
    for row in rows:
        table.add_row(row.name, row.functions, row.lines, row.pragmas,
                      row.dynamic_instructions, row.coverage_percent)
    table.add_row("Total", sum(r.functions for r in rows),
                  sum(r.lines for r in rows), sum(r.pragmas for r in rows),
                  sum(r.dynamic_instructions for r in rows), "")
    return table.render()
