"""Hardened execution of experiment batches — now adapters over
:mod:`repro.orchestrate`.

This module used to own the retry/timeout/checkpoint machinery itself;
that machinery now lives in the sweep scheduler
(:class:`~repro.orchestrate.scheduler.Scheduler`) and its append-only
:class:`~repro.orchestrate.journal.Journal`, where the figure DAGs share
it. What remains here is the thin compatibility surface the rest of the
code (and downstream callers) already speak:

- :class:`ExperimentRunner` — the one-job-at-a-time interface; each
  ``run`` call is executed as a single-job DAG under the scheduler's
  policy (cooperative ``wall_limit`` injection, bounded retry for
  environmental flakes, no retry for deterministic ``ReproError``s or
  timeouts), and the outcome is reported in the historical
  :class:`JobOutcome` shape;
- :class:`Checkpoint` — the journal, keyed by caller-chosen job names.
  Records *append* now instead of rewriting the whole file (the old
  pickle checkpoint was O(n²) bytes over a sweep); a torn tail from a
  crash mid-write is discarded on load and truncated on the next write.

Jobs are identified by a caller-chosen string key (e.g.
``"fig19/mesa/realistic-2port"``); a checkpoint hit short-circuits the
job entirely and is reported as status ``"resumed"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.orchestrate.dag import JobDAG, JobSpec
from repro.orchestrate.journal import Journal
from repro.orchestrate.scheduler import JobResult, Scheduler

#: Job statuses considered successful (a value is present).
OK_STATUSES = ("ok", "resumed")


@dataclass
class JobOutcome:
    """What happened to one experiment job."""

    key: str
    status: str                 # "ok" | "resumed" | "timeout" | "error"
    value: object = None
    error: str | None = None
    attempts: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES

    @property
    def degraded(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        if self.status == "resumed":
            return "resumed from checkpoint"
        if self.status == "ok":
            return f"ok in {self.elapsed:.2f}s"
        detail = self.error or "unknown failure"
        return (f"{self.status.upper()} after {self.attempts} "
                f"attempt{'s' if self.attempts != 1 else ''}: {detail}")

    @classmethod
    def from_result(cls, result: JobResult) -> "JobOutcome":
        # The scheduler's "skipped" (upstream degraded) reports as an
        # error here: JobOutcome predates DAG-aware statuses.
        status = "error" if result.status == "skipped" else result.status
        return cls(key=result.name, status=status, value=result.value,
                   error=result.error, attempts=result.attempts,
                   elapsed=result.elapsed)


class Checkpoint:
    """Journal of completed job values, keyed by caller-chosen job key.

    A thin adapter over :class:`~repro.orchestrate.journal.Journal`:
    every ``record`` appends one line (crash mid-write can tear only the
    line being written, and the torn tail is discarded on reload);
    superseded lines are compacted away automatically. Values must be
    picklable — figure rows (plain dataclasses) are.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.journal = Journal(self.path)

    def __contains__(self, key: str) -> bool:
        return key in self.journal

    def __len__(self) -> int:
        return len(self.journal)

    def get(self, key: str):
        return self.journal.value(key)

    def record(self, key: str, value) -> None:
        self.journal.record(key, name=key, status="ok", value=value,
                            attempts=1)

    def clear(self) -> None:
        self.journal.clear()


class ExperimentRunner:
    """Runs experiment jobs with timeout, bounded retry, and checkpointing.

    ``wall_limit`` is the per-attempt budget in seconds; job callables
    receive it as a ``wall_limit=`` keyword when they accept one (pass it
    through to ``program.simulate``, which enforces it cooperatively).
    ``retries`` is how many *extra* attempts a failing job gets; retries
    exist for environmental flakes — a deterministic ``ReproError``
    (compile bug, deadlock) is not retried.

    Each ``run`` call executes as a single-job DAG under the
    :class:`~repro.orchestrate.scheduler.Scheduler`, journaled by job
    *name* so the caller's keys stay the resume identity. Figure
    harnesses no longer call :meth:`run` — they declare whole DAGs and
    :meth:`absorb` the sweep result — but the per-job surface remains
    for ad-hoc hardened execution.
    """

    def __init__(self, wall_limit: float | None = None, retries: int = 0,
                 checkpoint: Checkpoint | str | Path | None = None):
        self.wall_limit = wall_limit
        self.retries = max(0, retries)
        if isinstance(checkpoint, (str, Path)):
            checkpoint = Checkpoint(checkpoint)
        self.checkpoint = checkpoint
        self.outcomes: list[JobOutcome] = []

    # ------------------------------------------------------------------

    @property
    def journal(self) -> Journal | None:
        return self.checkpoint.journal if self.checkpoint is not None \
            else None

    def scheduler(self, dag: JobDAG) -> Scheduler:
        """A scheduler carrying this runner's policy (the adapter core)."""
        return Scheduler(dag, journal=self.journal, retries=self.retries,
                         wall_limit=self.wall_limit, key_by="name")

    def run(self, key: str, job, *args, **kwargs) -> JobOutcome:
        """Execute ``job(*args, **kwargs)`` under this runner's policy."""
        dag = JobDAG(key)
        dag.add(JobSpec(name=key, fn=job, args=args, kwargs=kwargs,
                        category="cell"))
        sweep = self.scheduler(dag).run()
        outcome = JobOutcome.from_result(sweep[key])
        self.outcomes.append(outcome)
        return outcome

    def absorb(self, sweep, categories=("cell",)) -> None:
        """Adopt a sweep's measurement outcomes (DAG-declared harnesses)."""
        for name in sweep.order:
            result = sweep.results[name]
            if result.category in categories:
                self.outcomes.append(JobOutcome.from_result(result))

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if outcome.degraded]

    def report(self) -> str:
        """One line per job — the batch post-mortem."""
        lines = []
        for outcome in self.outcomes:
            lines.append(f"{outcome.key}: {outcome.describe()}")
        ok = sum(1 for outcome in self.outcomes if outcome.ok)
        lines.append(f"{ok}/{len(self.outcomes)} jobs completed, "
                     f"{len(self.degraded)} degraded")
        return "\n".join(lines)
