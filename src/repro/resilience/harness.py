"""Hardened execution of experiment batches (figures, tables, sweeps).

The figure harnesses used to run every kernel inline: one wedged or
crashed kernel destroyed the whole batch and all completed work with it.
This module provides the degradation layer the ROADMAP's
production-scale north star demands:

- :class:`ExperimentRunner` — runs one job at a time with a wall-clock
  budget (enforced cooperatively by the simulator's ``wall_limit``),
  bounded retries, and full per-job error capture; a failing job yields
  a degraded :class:`JobOutcome` instead of an exception;
- :class:`Checkpoint` — a pickle-backed journal of completed job values
  with atomic writes, so an interrupted figure run resumes from where it
  stopped instead of recomputing (or worse, losing) finished rows.

Jobs are identified by a caller-chosen string key (e.g.
``"fig19/mesa/realistic-2port"``); a checkpoint hit short-circuits the
job entirely and is reported as status ``"resumed"``.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError, SimulationTimeout

#: Job statuses considered successful (a value is present).
OK_STATUSES = ("ok", "resumed")


@dataclass
class JobOutcome:
    """What happened to one experiment job."""

    key: str
    status: str                 # "ok" | "resumed" | "timeout" | "error"
    value: object = None
    error: str | None = None
    attempts: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES

    @property
    def degraded(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        if self.status == "resumed":
            return "resumed from checkpoint"
        if self.status == "ok":
            return f"ok in {self.elapsed:.2f}s"
        detail = self.error or "unknown failure"
        return (f"{self.status.upper()} after {self.attempts} "
                f"attempt{'s' if self.attempts != 1 else ''}: {detail}")


class Checkpoint:
    """Atomic pickle journal of completed job values, keyed by job key.

    The file holds one ``{key: value}`` dict; every ``record`` rewrites
    it atomically (temp file + rename), so a crash mid-write can never
    corrupt previously completed work. Values must be picklable — figure
    rows (plain dataclasses) are.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._values: dict[str, object] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = self.path.read_bytes()
        except OSError:
            return
        try:
            values = pickle.loads(data)
        except Exception:
            # Corrupt journal (interrupted first write, version skew):
            # start over rather than poison the run.
            return
        if isinstance(values, dict):
            self._values = values

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def get(self, key: str):
        return self._values.get(key)

    def record(self, key: str, value) -> None:
        self._values[key] = value
        self._flush()

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps(self._values, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def clear(self) -> None:
        self._values = {}
        with contextlib.suppress(OSError):
            self.path.unlink()


class ExperimentRunner:
    """Runs experiment jobs with timeout, bounded retry, and checkpointing.

    ``wall_limit`` is the per-attempt budget in seconds; job callables
    receive it as a ``wall_limit=`` keyword when they accept one (pass it
    through to ``program.simulate``, which enforces it cooperatively).
    ``retries`` is how many *extra* attempts a failing job gets; retries
    exist for environmental flakes — a deterministic ``ReproError``
    (compile bug, deadlock) is not retried, matching "bounded retry with
    sequential fallback": the retry runs the same job in-process, there
    is no parallel context to fall back from here.
    """

    def __init__(self, wall_limit: float | None = None, retries: int = 0,
                 checkpoint: Checkpoint | str | Path | None = None):
        self.wall_limit = wall_limit
        self.retries = max(0, retries)
        if isinstance(checkpoint, (str, Path)):
            checkpoint = Checkpoint(checkpoint)
        self.checkpoint = checkpoint
        self.outcomes: list[JobOutcome] = []

    # ------------------------------------------------------------------

    def run(self, key: str, job, *args, **kwargs) -> JobOutcome:
        """Execute ``job(*args, **kwargs)`` under this runner's policy."""
        if self.checkpoint is not None and key in self.checkpoint:
            outcome = JobOutcome(key=key, status="resumed",
                                 value=self.checkpoint.get(key))
            self.outcomes.append(outcome)
            return outcome
        if self.wall_limit is not None and _accepts_wall_limit(job):
            kwargs = dict(kwargs, wall_limit=self.wall_limit)
        attempts = 0
        started = time.monotonic()
        outcome = None
        while attempts <= self.retries:
            attempts += 1
            try:
                value = job(*args, **kwargs)
            except SimulationTimeout as error:
                outcome = JobOutcome(key=key, status="timeout",
                                     error=str(error), attempts=attempts)
                break  # a cooperative timeout will time out again
            except ReproError as error:
                outcome = JobOutcome(key=key, status="error",
                                     error=f"{type(error).__name__}: {error}",
                                     attempts=attempts)
                break  # deterministic failure: retrying cannot help
            except Exception as error:  # noqa: BLE001 — isolation boundary
                outcome = JobOutcome(key=key, status="error",
                                     error=f"{type(error).__name__}: {error}",
                                     attempts=attempts)
                continue  # environmental flake: retry within budget
            outcome = JobOutcome(key=key, status="ok", value=value,
                                 attempts=attempts)
            break
        outcome.elapsed = time.monotonic() - started
        if outcome.ok and self.checkpoint is not None:
            self.checkpoint.record(key, outcome.value)
        self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if outcome.degraded]

    def report(self) -> str:
        """One line per job — the batch post-mortem."""
        lines = []
        for outcome in self.outcomes:
            lines.append(f"{outcome.key}: {outcome.describe()}")
        ok = sum(1 for outcome in self.outcomes if outcome.ok)
        lines.append(f"{ok}/{len(self.outcomes)} jobs completed, "
                     f"{len(self.degraded)} degraded")
        return "\n".join(lines)


def _accepts_wall_limit(job) -> bool:
    import inspect
    try:
        signature = inspect.signature(job)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind == parameter.VAR_KEYWORD:
            return True
        if parameter.name == "wall_limit":
            return True
    return False
