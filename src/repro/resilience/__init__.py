"""Resilience subsystem: fault injection, forensics, hardened harness.

Three pillars (see ``docs/resilience.md``):

- :mod:`repro.resilience.faults` — seeded, deterministic timing faults
  (latency jitter/spikes, LSQ stall windows, bounded same-cycle event
  reordering) for the simulated machine;
- :mod:`repro.resilience.forensics` — wait-for analysis over a wedged
  simulation: :class:`DeadlockReport` with blocked nodes, starved ports,
  stuck producers, the minimal stuck cycle, and a JSON post-mortem;
- :mod:`repro.resilience.differential` — the executable form of the
  paper's timing-robustness claim: N perturbed schedules per kernel must
  match the sequential oracle;
- :mod:`repro.resilience.harness` — per-job timeouts, bounded retry, and
  checkpoint/resume for experiment batches.

This ``__init__`` imports only the leaf modules (faults, forensics) so
the simulator can import forensics on its error path without a cycle;
``differential`` and ``harness`` pull in the API layer and are imported
directly by their users.
"""

from repro.resilience.faults import (
    LATENCY_ONLY,
    REORDER_ONLY,
    SHAKE_EVERYTHING,
    FaultInjector,
    FaultPlan,
    default_plans,
)
from repro.resilience.forensics import (
    BlockedNode,
    DeadlockReport,
    MissingInput,
    build_deadlock_report,
    dump_postmortem,
)

__all__ = [
    "LATENCY_ONLY",
    "REORDER_ONLY",
    "SHAKE_EVERYTHING",
    "FaultInjector",
    "FaultPlan",
    "default_plans",
    "BlockedNode",
    "DeadlockReport",
    "MissingInput",
    "build_deadlock_report",
    "dump_postmortem",
]
