"""Differential checking across perturbed schedules.

Executable form of the paper's timing-robustness claim: token-serialized
memory SSA preserves program semantics under *any* timing of the spatial
fabric (§4, §7). Each kernel runs once on the sequential oracle, once on
the unperturbed dataflow simulator, and then under N seeded
:class:`~repro.resilience.faults.FaultPlan` schedules; the checker
asserts:

- **vs the oracle**: return value and final memory image are identical
  for every schedule (semantics are timing-independent);
- **vs the unperturbed dataflow run**: dynamic load/store/skipped counts
  are identical for every schedule (timing never changes *which* memory
  operations execute, only when).

Load/store counts are deliberately *not* compared against the oracle:
optimized graphs legitimately execute fewer memory operations (that is
the point of the paper), and predicated-off operations are counted as
``skipped_memops`` on the dataflow side only. Those two documented deltas
aside, a mismatch in any field is a soundness bug, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.faults import FaultPlan, default_plans


@dataclass
class ScheduleOutcome:
    """One dataflow run (unperturbed or under a fault plan) and its diffs."""

    plan: FaultPlan | None          # None = the unperturbed reference run
    return_value: object = None
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    skipped_memops: int = 0
    mismatches: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.error is None

    @property
    def seed(self) -> int | None:
        return self.plan.seed if self.plan is not None else None


@dataclass
class DifferentialResult:
    """All schedules of one (program, args) pair vs the oracle."""

    entry: str
    level: str
    oracle_return: object = None
    oracle_loads: int = 0
    oracle_stores: int = 0
    schedules: list[ScheduleOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.schedules)

    @property
    def mismatches(self) -> list[str]:
        found = []
        for outcome in self.schedules:
            tag = ("unperturbed" if outcome.plan is None
                   else f"seed {outcome.seed}")
            for mismatch in outcome.mismatches:
                found.append(f"[{tag}] {mismatch}")
            if outcome.error is not None:
                found.append(f"[{tag}] {outcome.error}")
        return found

    def summary(self) -> str:
        status = "OK" if self.ok else "MISMATCH"
        cycles = sorted({outcome.cycles for outcome in self.schedules})
        spread = (f"cycles {cycles[0]}" if len(cycles) == 1
                  else f"cycles {cycles[0]}..{cycles[-1]}")
        line = (f"{self.entry}/{self.level}: {status} over "
                f"{len(self.schedules)} schedules ({spread}, "
                f"return {self.oracle_return!r})")
        if not self.ok:
            line += "\n  " + "\n  ".join(self.mismatches)
        return line


def differential_check(program, args=None, plans=None, *, seeds: int = 3,
                       level: str | None = None,
                       memsys=None, event_limit: int | None = None,
                       wall_limit: float | None = None,
                       engine: str | None = None) -> DifferentialResult:
    """Run ``program`` under perturbed schedules and diff against the oracle.

    ``plans`` overrides the default seeded shake-everything plans;
    ``memsys`` is an optional :class:`~repro.sim.memsys.MemoryConfig`
    applied to every dataflow run (each schedule still observes cold
    hierarchy state, so cache contents never leak between schedules);
    ``engine`` selects the dataflow executor for every schedule (see
    ``CompiledProgram.simulate``; default ``codegen`` — the fault matrix
    runs as one batch through ``CompiledProgram.simulate_batch``, with
    the perturbed schedules on the instrumented path).
    """
    args = list(args or [])
    if plans is None:
        plans = default_plans(seeds)
    result = DifferentialResult(
        entry=program.entry,
        level=level if level is not None else program.opt_level,
    )
    oracle = program.run_sequential(list(args))
    result.oracle_return = oracle.return_value
    result.oracle_loads = oracle.loads
    result.oracle_stores = oracle.stores
    oracle_memory = oracle.memory.snapshot()

    schedule_plans = [None, *plans]
    runs = program.simulate_batch(
        [list(args) for _ in schedule_plans],
        memsys=memsys,
        engine=engine,
        event_limit=event_limit,
        wall_limit=wall_limit,
        faults=schedule_plans,
        return_exceptions=True,
    )

    reference: ScheduleOutcome | None = None
    for plan, run in zip(schedule_plans, runs):
        outcome = ScheduleOutcome(plan=plan)
        if isinstance(run, Exception):
            outcome.error = f"{type(run).__name__}: {run}"
            result.schedules.append(outcome)
            continue
        outcome.return_value = run.return_value
        outcome.cycles = run.cycles
        outcome.loads = run.loads
        outcome.stores = run.stores
        outcome.skipped_memops = run.skipped_memops
        if run.return_value != oracle.return_value:
            outcome.mismatches.append(
                f"return value {run.return_value!r} != oracle "
                f"{oracle.return_value!r}")
        if run.memory.snapshot() != oracle_memory:
            outcome.mismatches.append("final memory image != oracle")
        if reference is None:
            reference = outcome
        else:
            for field_name in ("loads", "stores", "skipped_memops"):
                got = getattr(outcome, field_name)
                want = getattr(reference, field_name)
                if got != want:
                    outcome.mismatches.append(
                        f"{field_name} {got} != unperturbed {want} "
                        "(schedule changed which memops execute)")
        result.schedules.append(outcome)
    return result


def check_kernel(name: str, levels=("none", "full"), plans=None, *,
                 seeds: int = 3, memsys=None,
                 wall_limit: float | None = None) -> list[DifferentialResult]:
    """Differential-check one benchmark kernel at each opt level.

    Uses the harness compilation cache, so repeated checks (tests, the CI
    smoke job, the CLI) share compilations.
    """
    from repro.harness.cache import compiled

    results = []
    for level in levels:
        compilation = compiled(name, level)
        result = differential_check(
            compilation.program, list(compilation.kernel.args),
            plans, seeds=seeds, level=level, memsys=memsys,
            wall_limit=wall_limit)
        results.append(result)
    return results


def check_matrix(names, levels=("none", "full"), *, seeds: int = 3,
                 memsys=None) -> list[DifferentialResult]:
    """The full differential matrix: kernels × levels × seeds."""
    results = []
    for name in names:
        results.extend(check_kernel(name, levels, seeds=seeds, memsys=memsys))
    return results
