"""Deadlock and stall forensics over a wedged dataflow simulation.

When the event queue drains before the return node fires, the raw
simulator state is opaque: queues of values hanging off anonymous nodes.
This module turns that state into a *wait-for analysis* over the Pegasus
graph:

- which nodes are **blocked** (some inputs present, others starved) and
  exactly which input port each is missing — including nodes starved on
  *empty* ports, which the old ``DeadlockError.pending`` list omitted
  because it only looked at non-empty queues;
- for every missing port, the **stuck producer** that never delivered;
- the **minimal stuck cycle** in the wait-for graph, when the deadlock is
  a circular token/value dependence rather than a starved chain;
- a **provenance chain** from the most downstream blocked node (the
  return, when it is blocked) back through stuck producers.

The analysis is read-only over simulator internals (queues, sticky ports)
and is built lazily on the error path only, so the happy path pays
nothing. ``dump_postmortem`` serializes the report plus a graph slice and
queue states to JSON for offline inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.pegasus import nodes as N

#: Cap on how many blocked nodes a report carries in full detail.
MAX_BLOCKED = 64
#: Cap on provenance-chain length.
MAX_CHAIN = 32


@dataclass(frozen=True)
class MissingInput:
    """One starved input port of a blocked node."""

    slot: int
    kind: str                      # "data" | "pred" | "token"
    producer_id: int | None        # None: the port was never connected
    producer_label: str | None

    def __str__(self) -> str:
        source = (f"from {self.producer_label}#{self.producer_id}"
                  if self.producer_id is not None else "unconnected")
        return f"in{self.slot} [{self.kind}] {source}"


@dataclass(frozen=True)
class BlockedNode:
    """A node that cannot fire, with the exact ports it is starved on."""

    node_id: int
    label: str
    hyperblock: int
    missing: tuple[MissingInput, ...]
    queued: tuple[tuple[int, int], ...]   # (slot, queued value count)
    note: str = ""                        # node-specific detail (merge/tk)

    def __str__(self) -> str:
        wants = ", ".join(str(m) for m in self.missing) or "nothing"
        held = ", ".join(f"in{slot}={count}" for slot, count in self.queued)
        text = f"{self.label}#{self.node_id} waiting on {wants}"
        if held:
            text += f" (holding {held})"
        if self.note:
            text += f" [{self.note}]"
        return text


@dataclass
class DeadlockReport:
    """Structured post-mortem of a wedged (or overrun) simulation."""

    graph_name: str
    cycle: int
    fired: int
    events_drained: bool
    blocked: list[BlockedNode] = field(default_factory=list)
    # Node ids forming a minimal cycle in the wait-for graph, in order
    # (each waits on the next; the last waits on the first). Empty when
    # the deadlock is a starved chain with no circular dependence.
    stuck_cycle: list[int] = field(default_factory=list)
    # (node_id, label, missing port str) hops from the most downstream
    # blocked node back towards the root cause.
    provenance: list[tuple[int, str, str]] = field(default_factory=list)
    truncated_blocked: int = 0
    # When the wedged simulation carried a probe bus with a HistoryRing
    # (CLI --diagnose attaches one): the last firings before the wedge,
    # as (node_id, label, cycle), and each blocked node's last fire
    # cycle (None if it never fired). Empty/absent without a ring.
    recent_fires: list[tuple[int, str, int]] = field(default_factory=list)
    last_fired: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def blocked_by_id(self, node_id: int) -> BlockedNode | None:
        for entry in self.blocked:
            if entry.node_id == node_id:
                return entry
        return None

    def render(self) -> str:
        """Human-readable forensics, for the CLI ``--diagnose`` path."""
        lines = [
            f"deadlock forensics for '{self.graph_name}' "
            f"at cycle {self.cycle} after {self.fired} firings",
        ]
        total = len(self.blocked) + self.truncated_blocked
        lines.append(f"blocked nodes ({total}):")
        for entry in self.blocked:
            last = self.last_fired.get(entry.node_id)
            suffix = (f"  (last fired @{last})" if last is not None
                      else "  (never fired)" if self.recent_fires else "")
            lines.append(f"  {entry}{suffix}")
        if self.truncated_blocked:
            lines.append(f"  ... {self.truncated_blocked} more")
        if self.stuck_cycle:
            labels = []
            for node_id in self.stuck_cycle:
                entry = self.blocked_by_id(node_id)
                labels.append(f"{entry.label}#{node_id}" if entry
                              else f"#{node_id}")
            lines.append("stuck cycle: " + " -> ".join(labels)
                         + f" -> {labels[0]}")
        else:
            lines.append("stuck cycle: none (starved chain)")
        if self.provenance:
            lines.append("provenance (downstream -> root cause):")
            for node_id, label, missing in self.provenance:
                lines.append(f"  {label}#{node_id} starved on {missing}")
        if self.recent_fires:
            lines.append(f"last activity before the wedge "
                         f"({len(self.recent_fires)} firings):")
            for node_id, label, cycle in self.recent_fires:
                lines.append(f"  @{cycle} {label}#{node_id}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "graph": self.graph_name,
            "cycle": self.cycle,
            "fired": self.fired,
            "events_drained": self.events_drained,
            "blocked": [
                {
                    "id": entry.node_id,
                    "label": entry.label,
                    "hyperblock": entry.hyperblock,
                    "missing": [
                        {"slot": m.slot, "kind": m.kind,
                         "producer_id": m.producer_id,
                         "producer_label": m.producer_label}
                        for m in entry.missing
                    ],
                    "queued": dict(entry.queued),
                    "note": entry.note,
                }
                for entry in self.blocked
            ],
            "truncated_blocked": self.truncated_blocked,
            "recent_fires": [
                {"id": node_id, "label": label, "cycle": cycle}
                for node_id, label, cycle in self.recent_fires
            ],
            "last_fired": dict(self.last_fired),
            "stuck_cycle": list(self.stuck_cycle),
            "provenance": [
                {"id": node_id, "label": label, "missing": missing}
                for node_id, label, missing in self.provenance
            ],
        }


# ----------------------------------------------------------------------
# Analysis


def build_deadlock_report(simulator) -> DeadlockReport:
    """Wait-for analysis over a finished-but-not-done simulator.

    ``simulator`` is a :class:`~repro.sim.dataflow.DataflowSimulator`
    whose event queue drained (deadlock) or whose event budget ran out;
    only its read-only state is touched.
    """
    graph = simulator.graph
    waiting: dict[int, BlockedNode] = {}
    for node in graph:
        if node.id in simulator._sticky_nodes or not node.inputs:
            continue
        entry = _analyze_node(simulator, node)
        if entry is not None:
            waiting[node.id] = entry
    waits_on = {
        node_id: [m.producer_id for m in entry.missing
                  if m.producer_id is not None]
        for node_id, entry in waiting.items()
    }
    stuck_cycle = _find_cycle(waits_on)
    provenance = _provenance(graph, waiting)
    # The report foregrounds *holders* — nodes sitting on queued values or
    # a pending decision, plus a starved return — then fills with idle
    # starved nodes; cycle members and provenance hops are always kept.
    must_keep = set(stuck_cycle) | {node_id for node_id, _, _ in provenance}

    def is_holder(entry: BlockedNode) -> bool:
        return bool(entry.queued or entry.note) or isinstance(
            graph.nodes.get(entry.node_id), N.ReturnNode)

    ordered = sorted(waiting.values(),
                     key=lambda e: (not is_holder(e), e.node_id))
    blocked: list[BlockedNode] = []
    truncated = 0
    for entry in ordered:
        if len(blocked) < MAX_BLOCKED or entry.node_id in must_keep:
            blocked.append(entry)
        else:
            truncated += 1
    blocked.sort(key=lambda e: e.node_id)
    # Reuse probe history when the run carried one (e.g. CLI --diagnose):
    # the last firings before the wedge, and when each blocked node last
    # fired, separate early casualties from nodes active until the end.
    recent_fires: list[tuple[int, str, int]] = []
    last_fired: dict[int, int] = {}
    ring = _probe_history(simulator)
    if ring is not None:
        for node_id, cycle in ring.tail(16):
            node = graph.nodes.get(node_id)
            recent_fires.append(
                (node_id, node.label() if node else "?", cycle))
        last_fired = {entry.node_id: ring.last_fired[entry.node_id]
                      for entry in blocked
                      if entry.node_id in ring.last_fired}
    return DeadlockReport(
        graph_name=graph.name,
        cycle=simulator._now,
        fired=simulator._fired,
        events_drained=not simulator._events,
        blocked=blocked,
        truncated_blocked=truncated,
        stuck_cycle=stuck_cycle,
        provenance=provenance,
        recent_fires=recent_fires,
        last_fired=last_fired,
    )


def _probe_history(simulator):
    """The simulator's HistoryRing probe listener, if one is attached."""
    bus = getattr(simulator, "probes", None)
    if bus is None:
        return None
    from repro.observe.probes import HistoryRing
    return bus.find(HistoryRing)


def _analyze_node(simulator, node) -> BlockedNode | None:
    """A :class:`BlockedNode` for ``node``, or None if it is not waiting.

    A node is *waiting* when at least one input port cannot be satisfied
    without further events — whether or not other ports hold queued
    values. This deliberately includes nodes starved on entirely empty
    ports (the old ``DeadlockError.pending`` construction only surfaced
    nodes with non-empty queues, hiding the actual blockers).
    """
    state = simulator._state.get(node.id)
    if state is None:
        # The simulator never initialized (report requested before run):
        # analyze against empty queues.
        from repro.sim.dataflow import _NodeState
        state = _NodeState(node)
    queued = tuple((slot, len(queue))
                   for slot, queue in enumerate(state.queues) if queue)
    note = ""

    if isinstance(node, N.MergeNode) and node.has_control:
        missing, note = _merge_missing(simulator, node, state)
    elif isinstance(node, N.TokenGenNode):
        if state.tk_demands > 0 and state.tk_credits == 0:
            missing = [_missing_input(simulator, node, 1)]
            note = (f"tk demands={state.tk_demands} "
                    f"credits={state.tk_credits}")
        else:
            missing = []
    elif isinstance(node, (N.ControlStreamNode,)) or (
            isinstance(node, N.MergeNode) and not node.has_control):
        # Any-input nodes: a single arrival on any slot fires them, so
        # they are starved only when *every* slot is empty. With the
        # event queue drained, every producer is then genuinely stuck.
        if queued:
            missing = []
        else:
            missing = [_missing_input(simulator, node, slot)
                       for slot in range(len(node.inputs))
                       if not _slot_ready(simulator, node, state, slot)]
            note = "any input suffices"
    else:
        # Strict nodes: every non-ready input is a missing port.
        missing = [
            _missing_input(simulator, node, slot)
            for slot in range(len(node.inputs))
            if not _slot_ready(simulator, node, state, slot)
        ]

    missing = [m for m in missing if m is not None]
    if not missing:
        return None
    return BlockedNode(
        node_id=node.id,
        label=node.label(),
        hyperblock=node.hyperblock,
        missing=tuple(missing),
        queued=queued,
        note=note,
    )


def _merge_missing(simulator, node, state):
    """Missing ports of a controlled (loop) merge, with a decision note."""
    missing = []
    if state.merge_expect is None:
        slot = node.control_slot
        if not _slot_ready(simulator, node, state, slot):
            missing.append(_missing_input(simulator, node, slot))
        note = "awaiting control decision"
    else:
        expected = (sorted(node.back_inputs) if state.merge_expect == "back"
                    else node.entry_slots())
        starved = [slot for slot in expected if not state.queues[slot]]
        for slot in starved:
            missing.append(_missing_input(simulator, node, slot))
        note = f"expecting {state.merge_expect} value"
    return [m for m in missing if m is not None], note


def _slot_ready(simulator, node, state, slot: int) -> bool:
    port = node.inputs[slot]
    if port is None:
        return _optional_slot(node, slot)
    if port in simulator._sticky:
        return True
    return bool(state.queues[slot])


def _optional_slot(node, slot: int) -> bool:
    return isinstance(node, N.LoadNode) and slot == N.LoadNode.TOKEN_IN


def _missing_input(simulator, node, slot: int) -> MissingInput | None:
    port = node.inputs[slot]
    kinds = node.input_kinds()
    kind = kinds[slot] if slot < len(kinds) else "data"
    if port is None:
        if _optional_slot(node, slot):
            return None
        return MissingInput(slot=slot, kind=kind,
                            producer_id=None, producer_label=None)
    return MissingInput(slot=slot, kind=kind,
                        producer_id=port.node.id,
                        producer_label=port.node.label())


def _find_cycle(waits_on: dict[int, list[int]]) -> list[int]:
    """A minimal cycle in the wait-for graph (shortest found via BFS).

    Edges run blocked-node -> stuck-producer; only edges between nodes
    that are themselves waiting can close a cycle.
    """
    best: list[int] = []
    for start in sorted(waits_on):
        # BFS from `start` restricted to waiting nodes; a path returning
        # to `start` is a cycle. Graphs here are small error-path slices.
        parents: dict[int, int | None] = {start: None}
        frontier = [start]
        found = None
        while frontier and found is None:
            next_frontier = []
            for current in frontier:
                for producer in waits_on.get(current, ()):
                    if producer == start:
                        found = current
                        break
                    if producer in waits_on and producer not in parents:
                        parents[producer] = current
                        next_frontier.append(producer)
                if found is not None:
                    break
            frontier = next_frontier
        if found is not None:
            cycle = [found]
            while parents[cycle[-1]] is not None:
                cycle.append(parents[cycle[-1]])
            cycle.reverse()
            if not best or len(cycle) < len(best):
                best = cycle
    return best


def _provenance(graph,
                waiting: dict[int, BlockedNode]) -> list[tuple[int, str, str]]:
    """Chain from the most downstream waiting node towards the root cause.

    Starts at the starved return node when there is one (the symptom the
    user sees), otherwise at the first node holding queued work, and
    follows missing ports producer-to-producer until the chain leaves the
    waiting set, cycles, or bottoms out at the stuck producer.
    """
    if not waiting:
        return []
    start = next((entry for entry in waiting.values()
                  if isinstance(graph.nodes.get(entry.node_id), N.ReturnNode)),
                 None)
    if start is None:
        start = next((entry for entry in waiting.values() if entry.queued),
                     next(iter(waiting.values())))
    chain: list[tuple[int, str, str]] = []
    seen: set[int] = set()
    current: BlockedNode | None = start
    while current is not None and current.node_id not in seen \
            and len(chain) < MAX_CHAIN:
        seen.add(current.node_id)
        if not current.missing:
            break
        missing = current.missing[0]
        chain.append((current.node_id, current.label, str(missing)))
        current = (waiting.get(missing.producer_id)
                   if missing.producer_id is not None else None)
    return chain


# ----------------------------------------------------------------------
# Post-mortem artifact


def dump_postmortem(report: DeadlockReport, path, graph=None) -> None:
    """Write ``report`` (plus an optional graph slice) as JSON to ``path``.

    The slice covers every blocked node and its immediate producers, so
    offline tooling can reconstruct the stuck neighbourhood without the
    full (potentially huge) graph.
    """
    payload = report.to_json()
    if graph is not None:
        wanted: set[int] = set()
        for entry in report.blocked:
            wanted.add(entry.node_id)
            for missing in entry.missing:
                if missing.producer_id is not None:
                    wanted.add(missing.producer_id)
        wanted.update(report.stuck_cycle)
        slice_nodes = []
        for node_id in sorted(wanted):
            node = graph.nodes.get(node_id)
            if node is None:
                continue
            slice_nodes.append({
                "id": node.id,
                "label": node.label(),
                "kind": type(node).__name__,
                "hyperblock": node.hyperblock,
                "inputs": [
                    None if port is None else
                    {"producer": port.node.id, "out": port.index}
                    for port in node.inputs
                ],
            })
        payload["graph_slice"] = slice_nodes
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
