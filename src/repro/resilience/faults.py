"""Deterministic fault injection for the simulated machine.

The paper's central correctness claim (§4, §7) is that the token network
serializes memory side effects *semantically*: no matter how the spatial
fabric reorders execution in time, the program computes the same values.
The dataflow simulator, however, normally explores exactly one timing
schedule per graph. A :class:`FaultPlan` perturbs that schedule — without
ever touching functional values — so the differential checker
(:mod:`repro.resilience.differential`) can exercise many schedules per
kernel and assert they all agree with the sequential oracle.

Three fault families, all timing-only and all derived from one seed:

- **latency jitter and spikes** on each level of the memory hierarchy
  (L1/L2/DRAM/TLB, and the perfect-memory path), added on top of the
  configured service latency;
- **LSQ stall windows**: an access occasionally waits extra cycles before
  acquiring a load-store-queue port, modeling arbitration hiccups;
- **bounded event reordering**: same-cycle event deliveries are shuffled
  within a window, *preserving per-producer FIFO order* (a hardware
  operator's output queue cannot reorder against itself, and the
  simulator's merge semantics rely on per-channel arrival order).

Everything is driven by one ``random.Random(seed)`` consumed in
simulation order, so a (plan, graph, args) triple replays exactly — a
failing schedule is a reproducible artifact, not a flake.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random

#: Memory-hierarchy levels that accept latency faults.
LEVELS = ("perfect", "l1", "l2", "mem", "tlb")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of one perturbed schedule.

    All fields are *maximum extra cycles* or probabilities; a zero field
    disables that fault family. Plans are immutable and hashable, so they
    can key caches and parametrize tests.
    """

    seed: int = 0
    # Uniform latency jitter, in extra cycles, per hierarchy level.
    perfect_jitter: int = 0
    l1_jitter: int = 0
    l2_jitter: int = 0
    mem_jitter: int = 0
    tlb_jitter: int = 0
    # Rare large spikes (e.g. a DRAM refresh collision).
    spike_rate: float = 0.0
    spike_cycles: int = 0
    # LSQ arbitration stalls.
    lsq_stall_rate: float = 0.0
    lsq_stall_cycles: int = 0
    # Bounded reordering of same-cycle event delivery.
    reorder_window: int = 0

    def injector(self) -> "FaultInjector":
        """A fresh stateful injector; one per simulation run."""
        return FaultInjector(self)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    @property
    def perturbs_timing(self) -> bool:
        return any((self.perfect_jitter, self.l1_jitter, self.l2_jitter,
                    self.mem_jitter, self.tlb_jitter, self.reorder_window))

    def describe(self) -> str:
        active = []
        for name in ("perfect_jitter", "l1_jitter", "l2_jitter",
                     "mem_jitter", "tlb_jitter", "reorder_window"):
            value = getattr(self, name)
            if value:
                active.append(f"{name}={value}")
        if self.spike_rate:
            active.append(f"spike={self.spike_rate}x{self.spike_cycles}")
        if self.lsq_stall_rate:
            active.append(
                f"lsq_stall={self.lsq_stall_rate}x{self.lsq_stall_cycles}")
        detail = ", ".join(active) if active else "no-op"
        return f"FaultPlan(seed={self.seed}: {detail})"


#: A plan that shakes every fault family at once — the default for the
#: differential property test. Jitter amplitudes are deliberately larger
#: than every configured hit latency so schedules diverge immediately.
SHAKE_EVERYTHING = FaultPlan(
    perfect_jitter=7,
    l1_jitter=5,
    l2_jitter=11,
    mem_jitter=40,
    tlb_jitter=16,
    spike_rate=0.02,
    spike_cycles=200,
    lsq_stall_rate=0.05,
    lsq_stall_cycles=9,
    reorder_window=4,
)

#: Latency-only variant (no event reordering): isolates hierarchy timing.
LATENCY_ONLY = replace(SHAKE_EVERYTHING, reorder_window=0)

#: Reorder-only variant: isolates same-cycle delivery order.
REORDER_ONLY = FaultPlan(reorder_window=8)


def default_plans(count: int, base_seed: int = 0,
                  template: FaultPlan = SHAKE_EVERYTHING) -> list[FaultPlan]:
    """``count`` distinct plans derived from ``template``, seeds rotating."""
    return [template.with_seed(base_seed + index) for index in range(count)]


class FaultInjector:
    """The stateful executor of a :class:`FaultPlan` for one run.

    Consumed by :class:`~repro.sim.memsys.MemorySystem` (latency and LSQ
    faults) and :class:`~repro.sim.dataflow.DataflowSimulator` (event
    reordering). All draws come from one PRNG in call order, which the
    deterministic simulator makes reproducible.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = Random(plan.seed)
        # Per-producer guard for the reorder keys: (time, last key).
        self._last_key: dict[int, tuple[int, int]] = {}
        # Observability: how much delay each family injected.
        self.injected_latency = 0
        self.injected_stalls = 0
        self.reordered_events = 0

    # ------------------------------------------------------------------
    # Memory-hierarchy faults

    _JITTER_FIELDS = {
        "perfect": "perfect_jitter",
        "l1": "l1_jitter",
        "l2": "l2_jitter",
        "mem": "mem_jitter",
        "tlb": "tlb_jitter",
    }

    def memory_extra(self, level: str) -> int:
        """Extra cycles to add to one access at hierarchy ``level``."""
        plan = self.plan
        extra = 0
        jitter = getattr(plan, self._JITTER_FIELDS[level])
        if jitter:
            extra += self._rng.randint(0, jitter)
        if plan.spike_rate and plan.spike_cycles:
            if self._rng.random() < plan.spike_rate:
                extra += plan.spike_cycles
        self.injected_latency += extra
        return extra

    def lsq_stall(self) -> int:
        """Extra cycles an access waits before acquiring an LSQ port."""
        plan = self.plan
        if plan.lsq_stall_rate and plan.lsq_stall_cycles:
            if self._rng.random() < plan.lsq_stall_rate:
                stall = self._rng.randint(1, plan.lsq_stall_cycles)
                self.injected_stalls += stall
                return stall
        return 0

    # ------------------------------------------------------------------
    # Event reordering

    def reorder_key(self, producer_id: int, at: int, seq: int) -> int:
        """A perturbed tie-break key for an event emitted at time ``at``.

        Same-cycle events from *different* producers may swap delivery
        order (the key jitters within the window); events from the *same*
        producer at the same timestamp keep their relative order — the
        key is clamped to stay monotone per producer, preserving each
        output channel's FIFO discipline.
        """
        window = self.plan.reorder_window
        if window <= 0:
            return seq
        key = seq + self._rng.randint(0, window)
        previous = self._last_key.get(producer_id)
        if previous is not None and previous[0] == at and key <= previous[1]:
            key = previous[1] + 1
        else:
            if key != seq:
                self.reordered_events += 1
        self._last_key[producer_id] = (at, key)
        return key
