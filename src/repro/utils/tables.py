"""Plain-text table rendering for the experiment harness.

The benchmark drivers print the same rows the paper's tables and figures
report; this module renders them with aligned columns so the output is
readable both in a terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TextTable:
    """Accumulates rows and renders them with aligned columns."""

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_series(name: str, points: Iterable[tuple[object, object]]) -> str:
    """Render a (x, y) series the way a figure's data would be tabulated."""
    parts = [f"{name}:"]
    for x, y in points:
        parts.append(f"  {x} -> {_format_cell(y)}")
    return "\n".join(parts)
