"""Small shared utilities: deterministic sets, id allocation, text tables."""

from repro.utils.orderedset import OrderedSet
from repro.utils.ids import IdAllocator
from repro.utils.tables import TextTable

__all__ = ["OrderedSet", "IdAllocator", "TextTable"]
