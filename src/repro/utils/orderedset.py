"""An insertion-ordered set.

Compiler passes iterate over sets of nodes and must be deterministic from run
to run; Python's built-in ``set`` iterates in hash order, which varies with
object identity. ``OrderedSet`` provides set semantics with insertion-order
iteration, backed by a ``dict`` (whose ordering guarantee is part of the
language since Python 3.7).
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet(Generic[T]):
    """A set that iterates in insertion order."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()):
        self._items: dict[T, None] = dict.fromkeys(items)

    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        del self._items[item]

    def pop_first(self) -> T:
        """Remove and return the oldest element."""
        item = next(iter(self._items))
        del self._items[item]
        return item

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def clear(self) -> None:
        self._items.clear()

    def copy(self) -> "OrderedSet[T]":
        return OrderedSet(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"

    def __or__(self, other: Iterable[T]) -> "OrderedSet[T]":
        result = self.copy()
        result.update(other)
        return result

    def __and__(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item in other_set)

    def __sub__(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item not in other_set)
