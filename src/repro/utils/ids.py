"""Deterministic integer id allocation.

Graph nodes, basic blocks, and memory objects all carry small integer ids;
each owning container allocates them from its own :class:`IdAllocator` so
that ids are dense, deterministic, and stable across identical runs.
"""

from __future__ import annotations


class IdAllocator:
    """Hands out consecutive integers starting from ``first``."""

    __slots__ = ("_next",)

    def __init__(self, first: int = 0):
        self._next = first

    def allocate(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The id the next :meth:`allocate` call will return."""
        return self._next

    def reserve(self, count: int) -> range:
        """Allocate ``count`` consecutive ids and return them as a range."""
        start = self._next
        self._next += count
        return range(start, self._next)
