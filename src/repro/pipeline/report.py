"""Structured compilation report: what every stage and pass did, and what
it cost.

The paper's evaluation (Table 1, Figures 18/19, the §7.3 ablations) is
about per-optimization contribution; the report is the compiler-side half
of that story.  Every stage of the :class:`~repro.pipeline.driver.
CompilerDriver` and every optimization pass execution records wall time,
reported change count, and the IR-size delta (nodes / loads / stores /
token machinery), so ``python -m repro ... --report`` and the harness can
show exactly where compile time and graph shrinkage come from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class IRSnapshot:
    """Static size of a Pegasus graph at one instant."""

    nodes: int = 0
    loads: int = 0
    stores: int = 0
    tokens: int = 0  # token machinery: combines + token generators

    @classmethod
    def of(cls, graph) -> "IRSnapshot":
        stats = graph.stats()
        return cls(
            nodes=len(graph),
            loads=stats.get("LoadNode", 0),
            stores=stats.get("StoreNode", 0),
            tokens=stats.get("CombineNode", 0) + stats.get("TokenGenNode", 0),
        )

    def to_dict(self) -> dict[str, int]:
        return {"nodes": self.nodes, "loads": self.loads,
                "stores": self.stores, "tokens": self.tokens}


@dataclass
class StageRecord:
    """One named driver stage (parse, lower, build, ...)."""

    name: str
    wall_time: float = 0.0
    detail: dict = field(default_factory=dict)
    after: IRSnapshot | None = None  # graph size, once a graph exists

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_time": self.wall_time,
            "detail": dict(self.detail),
            "after": self.after.to_dict() if self.after else None,
        }


@dataclass
class PassRecord:
    """One execution of one optimization pass.

    Passes inside a fixpoint group appear once per round, qualified as
    ``group[round].pass``, so the report shows convergence behavior, not
    just totals.
    """

    name: str
    group: str | None
    wall_time: float
    changes: int
    before: IRSnapshot
    after: IRSnapshot
    verify_time: float = 0.0
    verified: bool = False

    @property
    def nodes_delta(self) -> int:
        return self.after.nodes - self.before.nodes

    @property
    def loads_delta(self) -> int:
        return self.after.loads - self.before.loads

    @property
    def stores_delta(self) -> int:
        return self.after.stores - self.before.stores

    @property
    def tokens_delta(self) -> int:
        return self.after.tokens - self.before.tokens

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "wall_time": self.wall_time,
            "changes": self.changes,
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
            "verify_time": self.verify_time,
            "verified": self.verified,
        }


class CompilationReport:
    """Everything one compilation did, in structured form.

    ``counters`` is the pass-applicability statistics dictionary that used
    to live in ``OptContext.stats`` — passes still call
    ``ctx.count("licm.hoisted")`` and the counts land here.
    """

    def __init__(self, entry: str = "", config=None):
        self.entry = entry
        self.config = config
        # SHA-256 of the source text, stamped by the driver; the
        # telemetry layer uses it to tell "same kernel, new source"
        # from "same source, new toolchain".
        self.source_sha: str | None = None
        self.stages: list[StageRecord] = []
        self.passes: list[PassRecord] = []
        self.counters: dict[str, int] = {}
        self.verify_calls: int = 0
        self.verify_time: float = 0.0
        self.total_wall_time: float = 0.0
        self.cache_status: str = "uncached"  # "uncached" | "miss" | "hit"
        self.cache_key: str | None = None

    # ------------------------------------------------------------------
    # Recording

    def record_stage(self, name: str, wall_time: float, *,
                     detail: dict | None = None,
                     after: IRSnapshot | None = None) -> StageRecord:
        record = StageRecord(name=name, wall_time=wall_time,
                             detail=detail or {}, after=after)
        self.stages.append(record)
        return record

    def record_pass(self, name: str, group: str | None, wall_time: float,
                    changes: int, before: IRSnapshot, after: IRSnapshot,
                    verify_time: float = 0.0,
                    verified: bool = False) -> PassRecord:
        record = PassRecord(name=name, group=group, wall_time=wall_time,
                            changes=changes, before=before, after=after,
                            verify_time=verify_time, verified=verified)
        self.passes.append(record)
        return record

    def note_verify(self, elapsed: float) -> None:
        self.verify_calls += 1
        self.verify_time += elapsed

    # ------------------------------------------------------------------
    # Queries

    def stage(self, name: str) -> StageRecord | None:
        for record in self.stages:
            if record.name == name:
                return record
        return None

    @property
    def stage_names(self) -> list[str]:
        return [record.name for record in self.stages]

    @property
    def final_snapshot(self) -> IRSnapshot | None:
        for record in reversed(self.stages):
            if record.after is not None:
                return record.after
        return None

    @property
    def optimize_time(self) -> float:
        return sum(record.wall_time for record in self.passes)

    @property
    def total_changes(self) -> int:
        return sum(record.changes for record in self.passes)

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "source_sha": self.source_sha,
            "opt_level": self.config.opt_level if self.config else None,
            "verify": self.config.verify if self.config else None,
            "stages": [record.to_dict() for record in self.stages],
            "passes": [record.to_dict() for record in self.passes],
            "counters": dict(self.counters),
            "verify_calls": self.verify_calls,
            "verify_time": self.verify_time,
            "total_wall_time": self.total_wall_time,
            "cache_status": self.cache_status,
            "cache_key": self.cache_key,
        }

    # ------------------------------------------------------------------
    # Rendering

    def render(self) -> str:
        from repro.utils.tables import TextTable

        lines: list[str] = []
        level = self.config.opt_level if self.config else "?"
        policy = self.config.verify if self.config else "?"
        header = (f"compilation report: entry={self.entry!r} "
                  f"opt={level} verify={policy}")
        if self.cache_status != "uncached":
            header += f" cache={self.cache_status}"
        lines.append(header)

        stage_table = TextTable(["Stage", "ms", "nodes", "detail"],
                                title="stages")
        for record in self.stages:
            nodes = record.after.nodes if record.after else ""
            detail = " ".join(f"{k}={v}" for k, v in record.detail.items())
            stage_table.add_row(record.name,
                                f"{record.wall_time * 1e3:.2f}",
                                nodes, detail)
        lines.append(stage_table.render())

        if self.passes:
            pass_table = TextTable(
                ["Pass", "ms", "changes", "nodes", "Δnodes", "Δloads",
                 "Δstores", "Δtokens", "verify ms"],
                title="optimization passes",
            )
            for record in self.passes:
                pass_table.add_row(
                    record.name,
                    f"{record.wall_time * 1e3:.2f}",
                    record.changes,
                    record.after.nodes,
                    record.nodes_delta,
                    record.loads_delta,
                    record.stores_delta,
                    record.tokens_delta,
                    f"{record.verify_time * 1e3:.2f}" if record.verified
                    else "-",
                )
            lines.append(pass_table.render())

        if self.counters:
            counter_table = TextTable(["Counter", "count"],
                                      title="pass counters")
            for key in sorted(self.counters):
                counter_table.add_row(key, self.counters[key])
            lines.append(counter_table.render())

        lines.append(
            f"total {self.total_wall_time * 1e3:.2f} ms; "
            f"{self.verify_calls} verifier runs "
            f"({self.verify_time * 1e3:.2f} ms); "
            f"{self.total_changes} changes by "
            f"{len(self.passes)} pass executions"
        )
        return "\n\n".join(lines)


class Timer:
    """Tiny perf_counter helper: ``with Timer() as t: ...; t.elapsed``."""

    __slots__ = ("start", "elapsed")

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start
