"""Staged compilation pipeline: driver, config, instrumentation, cache.

- :mod:`repro.pipeline.config` — :class:`PipelineConfig`, the immutable
  description of one compilation (opt level, verification policy, unroll
  limit, points-to), and its cache fingerprint;
- :mod:`repro.pipeline.driver` — :class:`CompilerDriver`, the explicit
  staged pipeline (parse → unroll → lower → inline → hyperblocks → build
  → verify → optimize) that ``compile_minic`` wraps;
- :mod:`repro.pipeline.report` — :class:`CompilationReport`, per-stage and
  per-pass wall time, change counts, and IR-size deltas;
- :mod:`repro.pipeline.cache` — :class:`CompilationCache`, the persistent
  content-addressed artifact store;
- :mod:`repro.pipeline.parallel` — process-parallel kernel compilation
  over the shared cache.
"""

from repro.pipeline.config import (
    CACHE_SCHEMA,
    OPT_LEVELS,
    VERIFY_POLICIES,
    PipelineConfig,
)
from repro.pipeline.driver import STAGE_NAMES, STAGES, CompilerDriver, Stage
from repro.pipeline.report import CompilationReport, IRSnapshot, PassRecord, StageRecord
from repro.pipeline.cache import CompilationCache

__all__ = [
    "CACHE_SCHEMA",
    "OPT_LEVELS",
    "VERIFY_POLICIES",
    "PipelineConfig",
    "STAGE_NAMES",
    "STAGES",
    "CompilerDriver",
    "Stage",
    "CompilationReport",
    "IRSnapshot",
    "PassRecord",
    "StageRecord",
    "CompilationCache",
]
