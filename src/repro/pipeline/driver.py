"""The staged compiler driver.

The compile path used to be a monolithic ``compile_minic``; here it is
explicit data — an ordered list of named :class:`Stage` objects
(``parse → unroll → lower → inline → hyperblocks → build → verify →
optimize``), each of which transforms a mutable :class:`Compilation`
state and is timed into the :class:`~repro.pipeline.report.
CompilationReport`.  ``compile_minic`` remains as a thin compatibility
wrapper over this driver (same signature, structurally identical
graphs).

A driver may be given a :class:`~repro.pipeline.cache.CompilationCache`;
the fingerprint of (source, entry, output-relevant config) is looked up
before any stage runs, and the finished program is stored after.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.pipeline.config import PipelineConfig
from repro.pipeline.report import CompilationReport, IRSnapshot


@dataclass
class Compilation:
    """Mutable state threaded through the stages of one compile."""

    source: str
    entry: str
    config: PipelineConfig
    report: CompilationReport
    program: object = None      # frontend AST after parse
    lowered: object = None      # LoweredProgram after lower
    flat: object = None         # flattened ir.Function after inline
    partition: object = None    # HyperblockPartition after hyperblocks
    build: object = None        # BuildResult after build
    opt_context: object = None  # OptContext after optimize


@dataclass(frozen=True)
class Stage:
    """One named step of the pipeline: a pure description, run by name."""

    name: str
    run: Callable[[Compilation], dict | None]

    def __repr__(self) -> str:
        return f"Stage({self.name!r})"


# ----------------------------------------------------------------------
# Stage implementations.  Each returns an optional detail dict that lands
# in the stage's report record.

def _stage_parse(state: Compilation) -> dict:
    from repro.frontend import parse_program
    state.program = parse_program(state.source, state.config.filename)
    return {"functions": len(state.program.functions)}


def _stage_unroll(state: Compilation) -> dict:
    limit = state.config.unroll_limit
    if limit > 1:
        from repro.frontend.unroll import unroll_program
        unroll_program(state.program, limit)
        return {"limit": limit, "applied": True}
    return {"limit": limit, "applied": False}


def _stage_lower(state: Compilation) -> dict:
    from repro.cfg.lower import lower_program
    state.lowered = lower_program(state.program)
    return {"functions": len(state.lowered.functions),
            "globals": len(state.lowered.globals)}


def _stage_inline(state: Compilation) -> dict:
    from repro.cfg.inline import inline_program
    state.flat = inline_program(state.lowered, state.entry)
    return {"blocks": len(state.flat.blocks)}


def _stage_hyperblocks(state: Compilation) -> dict:
    from repro.cfg.hyperblocks import form_hyperblocks
    state.partition = form_hyperblocks(state.flat)
    return {"hyperblocks": len(state.partition.hyperblocks)}


def _stage_build(state: Compilation) -> dict:
    from repro.pegasus.builder import build_pegasus
    points_to = _resolve_points_to(state.config.points_to_dict(),
                                   state.lowered)
    state.build = build_pegasus(state.flat, state.lowered.globals,
                                points_to, partition=state.partition)
    return {"relations": len(state.build.relations)}


def _stage_verify(state: Compilation) -> dict:
    """Post-construction structural check, subject to the policy.

    Under ``final`` the single check happens after optimization instead —
    except at ``opt_level="none"``, where the built graph *is* the final
    graph and is checked here.
    """
    policy = state.config.verify
    run = policy in ("every-pass", "levels") or (
        policy == "final" and state.config.opt_level == "none")
    if run:
        from repro.pegasus.verify import verify_graph
        started = time.perf_counter()
        verify_graph(state.build.graph)
        state.report.note_verify(time.perf_counter() - started)
    return {"policy": policy, "ran": run}


def _stage_optimize(state: Compilation) -> dict:
    if state.config.opt_level == "none":
        return {"level": "none", "passes": 0}
    from repro.opt.passes import optimize
    state.opt_context = optimize(state.build,
                                 level=state.config.opt_level,
                                 verify=state.config.verify,
                                 report=state.report)
    return {"level": state.config.opt_level,
            "passes": len(state.report.passes),
            "changes": state.report.total_changes}


STAGES: tuple[Stage, ...] = (
    Stage("parse", _stage_parse),
    Stage("unroll", _stage_unroll),
    Stage("lower", _stage_lower),
    Stage("inline", _stage_inline),
    Stage("hyperblocks", _stage_hyperblocks),
    Stage("build", _stage_build),
    Stage("verify", _stage_verify),
    Stage("optimize", _stage_optimize),
)

STAGE_NAMES: tuple[str, ...] = tuple(stage.name for stage in STAGES)

# Stages after which a graph exists and its size is worth snapshotting.
_GRAPH_STAGES = frozenset({"build", "verify", "optimize"})


def _resolve_points_to(entry_points_to, lowered):
    if not entry_points_to:
        return None
    by_name = {symbol.name: symbol for symbol in lowered.globals}
    resolved = {}
    for param, names in entry_points_to.items():
        resolved[param] = [by_name[name] for name in names]
    return resolved


class CompilerDriver:
    """Runs the staged pipeline, instrumented, optionally cached."""

    def __init__(self, config: PipelineConfig | None = None,
                 cache=None, stages: tuple[Stage, ...] = STAGES):
        self.config = config if config is not None else PipelineConfig()
        self.cache = cache
        self.stages = stages

    def compile(self, source: str, entry: str, *,
                cache_only: bool = False):
        """Compile MiniC source text into a ``CompiledProgram``.

        The returned program carries its :class:`CompilationReport` as
        ``program.report`` (cache hits carry the report of the original
        compilation, re-marked ``cache_status="hit"``). When a
        :class:`~repro.observe.telemetry.TelemetrySession` is active,
        the compile (hit or miss) is recorded into it.

        ``cache_only`` turns the call into a warmth probe: a cached
        artifact is loaded and returned as usual, but a miss returns
        ``None`` instead of compiling — the compile service and
        ``repro cache stat`` use this to answer "is this artifact warm?"
        without ever doing the work. A probe miss records nothing.
        """
        from repro.observe.metrics import metrics

        key = None
        program = None
        if self.cache is not None:
            key = self.cache.key(source, entry, self.config)
            cached = self.cache.get(key)
            if cached is not None:
                if cached.report is not None:
                    cached.report.cache_status = "hit"
                    cached.report.cache_key = key
                program = cached
        if program is None:
            if cache_only:
                return None
            program = self._run_stages(source, entry, key)
            if self.cache is not None:
                self.cache.put(key, program)
        registry = metrics()
        if registry is not None:
            status = (getattr(program.report, "cache_status", None)
                      or "uncached")
            registry.counter("repro_compile_cache_total",
                             status=status).inc()
        self._record_telemetry(program)
        return program

    def cache_key(self, source: str, entry: str) -> str:
        """The content address this compile would live under (works
        with or without an attached cache)."""
        from repro.pipeline.cache import CompilationCache
        cache = self.cache if self.cache is not None else CompilationCache()
        return cache.key(source, entry, self.config)

    @staticmethod
    def _record_telemetry(program) -> None:
        from repro.observe.telemetry import current_session
        session = current_session()
        if session is not None and session.record_compiles:
            session.record_compile(program)

    # ------------------------------------------------------------------

    def _run_stages(self, source: str, entry: str, key: str | None):
        from repro.api import CompiledProgram
        from repro.observe.tracing import span

        report = CompilationReport(entry=entry, config=self.config)
        report.cache_status = "uncached" if self.cache is None else "miss"
        report.cache_key = key
        report.source_sha = hashlib.sha256(source.encode()).hexdigest()
        state = Compilation(source=source, entry=entry,
                            config=self.config, report=report)
        total_started = time.perf_counter()
        with span(f"compile:{entry}", entry=entry,
                  opt_level=self.config.opt_level):
            for stage in self.stages:
                started = time.perf_counter()
                with span(f"stage:{stage.name}"):
                    detail = stage.run(state) or {}
                elapsed = time.perf_counter() - started
                after = (IRSnapshot.of(state.build.graph)
                         if stage.name in _GRAPH_STAGES
                         and state.build is not None
                         else None)
                report.record_stage(stage.name, elapsed, detail=detail,
                                    after=after)
        report.total_wall_time = time.perf_counter() - total_started
        return CompiledProgram(
            source_program=state.program,
            lowered=state.lowered,
            flat=state.flat,
            build=state.build,
            entry=entry,
            opt_level=self.config.opt_level,
            report=report,
        )
