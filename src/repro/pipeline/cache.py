"""Persistent, content-addressed compilation cache.

Compiling a kernel is deterministic, so a compiled program is a pure
function of (source text, entry, output-relevant config).  Artifacts are
stored on disk under the SHA-256 of exactly that
(:meth:`~repro.pipeline.config.PipelineConfig.fingerprint`), which makes
the old in-process ``(name, level)`` cache's failure mode — two configs of
the same kernel silently sharing one artifact — structurally impossible,
and makes warm figure regeneration a matter of unpickling.

Layout: ``<root>/ab/abcdef....pkl`` (two-hex-digit fan-out).  Writes are
atomic (temp file + rename) so concurrent compilations — e.g. the
``ProcessPoolExecutor`` workers of :mod:`repro.pipeline.parallel` — can
share one cache directory without locking: last writer wins with an
identical artifact.

The root is, in order: the explicit ``root`` argument, ``$REPRO_CACHE_DIR``,
or ``~/.cache/repro-pegasus``.  Corrupt or unreadable entries are treated
as misses and deleted.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import sys
import tempfile
from pathlib import Path

from repro.pipeline.config import PipelineConfig

ENV_VAR = "REPRO_CACHE_DIR"

# Pegasus graphs pickle as deep object chains; the default interpreter
# recursion limit is not enough for the larger kernels.
_PICKLE_RECURSION_LIMIT = 200_000


@contextlib.contextmanager
def _deep_recursion():
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, _PICKLE_RECURSION_LIMIT))
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def default_root() -> Path:
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pegasus"


class CompilationCache:
    """Content-addressed on-disk store of pickled compiled programs."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_root()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys and paths

    @staticmethod
    def key(source: str, entry: str, config: PipelineConfig) -> str:
        return config.fingerprint(source, entry)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Store operations

    def get(self, key: str):
        """The cached program for ``key``, or ``None`` on a miss."""
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            with _deep_recursion():
                program = pickle.loads(data)
        except Exception:
            # Corrupt entry (interrupted write from an older layout, a
            # different interpreter, ...): drop it and recompile.
            with contextlib.suppress(OSError):
                path.unlink()
            self.misses += 1
            return None
        self.hits += 1
        return program

    def put(self, key: str, program) -> Path:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _deep_recursion():
            data = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    # ------------------------------------------------------------------
    # Maintenance

    def entries(self) -> list[Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.glob("??/*.pkl"))

    def clear(self) -> int:
        """Delete every cached artifact; returns how many were removed."""
        removed = 0
        for path in self.entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        entries = self.entries()
        return {
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
            "hits": self.hits,
            "misses": self.misses,
        }
