"""Persistent, content-addressed compilation cache.

Compiling a kernel is deterministic, so a compiled program is a pure
function of (source text, entry, output-relevant config).  Artifacts are
stored on disk under the SHA-256 of exactly that
(:meth:`~repro.pipeline.config.PipelineConfig.fingerprint`), which makes
the old in-process ``(name, level)`` cache's failure mode — two configs of
the same kernel silently sharing one artifact — structurally impossible,
and makes warm figure regeneration a matter of unpickling.

Layout: ``<root>/ab/abcdef....pkl`` (two-hex-digit fan-out).  Writes are
atomic (temp file + rename) so concurrent compilations — e.g. the
``ProcessPoolExecutor`` workers of :mod:`repro.pipeline.parallel` — can
share one cache directory without locking: last writer wins with an
identical artifact.

The root is, in order: the explicit ``root`` argument, ``$REPRO_CACHE_DIR``,
or ``~/.cache/repro-pegasus``.  Corrupt or unreadable entries are treated
as misses and deleted.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import sys
import tempfile
from pathlib import Path

from repro.pipeline.config import PipelineConfig

ENV_VAR = "REPRO_CACHE_DIR"

# Pegasus graphs pickle as deep object chains; the default interpreter
# recursion limit is not enough for the larger kernels.
_PICKLE_RECURSION_LIMIT = 200_000


@contextlib.contextmanager
def _deep_recursion():
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, _PICKLE_RECURSION_LIMIT))
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def default_root() -> Path:
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pegasus"


class CompilationCache:
    """Content-addressed on-disk store of pickled compiled programs."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_root()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys and paths

    @staticmethod
    def key(source: str, entry: str, config: PipelineConfig) -> str:
        return config.fingerprint(source, entry)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Store operations

    def get(self, key: str):
        """The cached program for ``key``, or ``None`` on a miss."""
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            with _deep_recursion():
                program = pickle.loads(data)
        except Exception:
            # Corrupt entry (interrupted write from an older layout, a
            # different interpreter, ...): drop it and recompile.
            with contextlib.suppress(OSError):
                path.unlink()
            self.misses += 1
            return None
        self.hits += 1
        return program

    def put(self, key: str, program) -> Path:
        """Atomically publish ``program`` under ``key``.

        Safe under concurrent warmers of the same key: the artifact is
        written to a same-directory temp file and ``os.replace``d into
        place (readers see the old complete file or the new complete
        file, never a torn write), and the temp file is fsynced first so
        a crash cannot leave a truncated artifact behind the rename.
        When an artifact for ``key`` already exists it is left alone —
        the key is content-addressed, so any existing entry is already
        the identical artifact and N racing warmers cost one write, not
        N (``tests/pipeline/test_cache_stress.py`` hammers this).
        """
        path = self.path(key)
        if path.exists():
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        with _deep_recursion():
            data = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    # ------------------------------------------------------------------
    # Maintenance

    def entries(self) -> list[Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.glob("??/*.pkl"))

    def clear(self) -> int:
        """Delete every cached artifact; returns how many were removed.

        Also sweeps any ``*.tmp`` droppings a crashed writer left behind
        (a process killed between ``mkstemp`` and ``os.replace``).
        """
        removed = 0
        for path in self.entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        for tmp in self.stale_tmp():
            with contextlib.suppress(OSError):
                tmp.unlink()
        return removed

    def stale_tmp(self) -> list[Path]:
        """Temp files from interrupted writes (crash mid-``put``)."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("??/*.tmp"))

    def stats(self) -> dict[str, int]:
        entries = self.entries()
        return {
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
            "hits": self.hits,
            "misses": self.misses,
        }
