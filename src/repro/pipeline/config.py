"""Compilation configuration: one immutable value describing a compile.

Everything that can change the produced graph lives here — the
optimization level, the unroll limit, and the entry points-to map — plus
two knobs that do *not* affect the output (the verification policy and the
diagnostic filename) and are therefore excluded from the cache
fingerprint.

Verification policies (see :mod:`repro.opt.passes`):

- ``every-pass`` — ``verify_graph`` after graph construction and after
  every individual pass execution, including each pass of every fixpoint
  round.  A structural violation names the pass that caused it.  This is
  the seed behavior and the default for tests.
- ``levels`` — verify after construction and after each top-level
  pipeline element; passes inside a fixpoint group are only checked once
  the group converges.
- ``final`` — verify exactly once, after the whole pipeline finishes.
- ``off`` — never verify.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.errors import ReproError

OPT_LEVELS = ("none", "basic", "medium", "full")
VERIFY_POLICIES = ("every-pass", "levels", "final", "off")

# Bump whenever the pickle layout of compiled programs changes in a way
# the version number does not capture (e.g. a node gains a slot).
CACHE_SCHEMA = 1


class ConfigError(ReproError):
    """An invalid :class:`PipelineConfig`."""


@dataclass(frozen=True)
class PipelineConfig:
    """Immutable description of one compilation.

    ``entry_points_to`` is stored in a canonical hashable form (sorted
    tuple of ``(param, (global, ...))`` pairs); use :meth:`make` to build a
    config from the loose ``dict`` the public API accepts and
    :meth:`points_to_dict` to get the dict back.
    """

    opt_level: str = "full"
    verify: str = "every-pass"
    unroll_limit: int = 0
    entry_points_to: tuple[tuple[str, tuple[str, ...]], ...] = ()
    filename: str = "<input>"

    def __post_init__(self):
        if self.opt_level not in OPT_LEVELS:
            raise ConfigError(f"opt_level must be one of {OPT_LEVELS}, "
                              f"got {self.opt_level!r}")
        if self.verify not in VERIFY_POLICIES:
            raise ConfigError(f"verify must be one of {VERIFY_POLICIES}, "
                              f"got {self.verify!r}")

    @classmethod
    def make(cls, opt_level: str = "full", verify: str = "every-pass",
             unroll_limit: int = 0,
             entry_points_to: dict[str, list[str]] | None = None,
             filename: str = "<input>") -> "PipelineConfig":
        normalized = ()
        if entry_points_to:
            normalized = tuple(sorted(
                (param, tuple(names))
                for param, names in entry_points_to.items()
            ))
        return cls(opt_level=opt_level, verify=verify,
                   unroll_limit=unroll_limit, entry_points_to=normalized,
                   filename=filename)

    def points_to_dict(self) -> dict[str, list[str]] | None:
        if not self.entry_points_to:
            return None
        return {param: list(names) for param, names in self.entry_points_to}

    def with_verify(self, policy: str) -> "PipelineConfig":
        return replace(self, verify=policy)

    # ------------------------------------------------------------------
    # Content addressing

    def fingerprint(self, source: str, entry: str) -> str:
        """Cache key: hash of the source plus every output-relevant knob.

        The verification policy and the filename are deliberately left
        out — they cannot change the produced graph — so e.g. a harness
        compile at ``verify=final`` hits the artifact a test produced at
        ``verify=every-pass``.
        """
        from repro import __version__
        payload = json.dumps({
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "source": source,
            "entry": entry,
            "opt_level": self.opt_level,
            "unroll_limit": self.unroll_limit,
            "entry_points_to": self.entry_points_to,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
