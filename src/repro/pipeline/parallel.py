"""Parallel kernel compilation over the persistent cache.

Cold figure regeneration compiles the whole benchmark subset serially;
each kernel is independent, so the compilations fan out over the shared
process-pool backend (:class:`~repro.orchestrate.executors.PoolExecutor`).
Workers publish finished artifacts through the shared on-disk
:class:`~repro.pipeline.cache.CompilationCache` (atomic renames, no
locking) and return only the cache key, so graphs cross the process
boundary once — via the cache file — instead of twice.

Failure handling is per-job: every job is submitted as its own future
and worker exceptions are collected per kernel instead of aborting the
batch. A job that *raised* in a worker is a deterministic failure and is
**not** re-executed — the worker's exception is reported directly (the
old wrapper re-ran every failed job serially in-process, so a bad cell
executed twice and serialized the tail of the batch; retry policy now
belongs to the DAG scheduler, :mod:`repro.orchestrate.scheduler`).
Jobs that never completed because the pool died (crashed worker,
``BrokenProcessPool``) are finished in-process, and sandboxes without
process primitives degrade to in-process execution transparently; the
results are identical either way.

These two functions remain the public fan-out surface; both are now
wrappers over the orchestrate pool executor.
"""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ParallelCompilationError, ReproError
from repro.orchestrate.executors import PoolExecutor
from repro.pipeline.cache import CompilationCache
from repro.pipeline.config import PipelineConfig
from repro.pipeline.driver import CompilerDriver


def _job_config(level: str, unroll_limit: int,
                entry_points_to: dict | None, verify: str) -> PipelineConfig:
    return PipelineConfig.make(opt_level=level, verify=verify,
                               unroll_limit=unroll_limit,
                               entry_points_to=entry_points_to)


def _compile_job(job: tuple) -> tuple[str, str, str]:
    """Worker: ensure one (kernel, config) artifact exists in the cache.

    Module-level so it pickles into pool workers.  Returns
    ``(name, level, key)``; the parent loads the artifact from disk.
    """
    (name, level, unroll_limit, entry_points_to, verify, cache_root) = job
    from repro.programs import get_kernel
    kernel = get_kernel(name)
    config = _job_config(level, unroll_limit, entry_points_to, verify)
    cache = CompilationCache(cache_root)
    key = cache.key(kernel.source, kernel.entry, config)
    if not cache.contains(key):
        CompilerDriver(config, cache=cache).compile(kernel.source,
                                                    kernel.entry)
    return name, level, key


def compile_kernels(names, levels=("none", "full"), *,
                    verify: str = "final", unroll_limit: int = 0,
                    use_kernel_points_to: bool = False,
                    cache: CompilationCache | None = None,
                    max_workers: int | None = None,
                    parallel: bool = True) -> dict[tuple[str, str], object]:
    """Compile ``names`` × ``levels``, warm-cache-aware and parallel.

    Returns ``{(name, level): CompiledProgram}``.
    ``use_kernel_points_to`` applies each kernel's declared
    ``entry_points_to`` annotation (part of the cache key); the default
    matches the figure harness, which compiles without them.

    One bad kernel never aborts the batch: every other compilation
    completes (and lands in the cache) first, then a single
    :class:`~repro.errors.ParallelCompilationError` reports all failures
    with their kernel names. A kernel that failed in a worker is not
    recompiled in-process — the worker's exception is definitive.
    """
    from repro.programs import get_kernel

    cache = cache if cache is not None else CompilationCache()
    jobs = []
    for name in names:
        kernel = get_kernel(name)
        points_to = kernel.entry_points_to if use_kernel_points_to else None
        for level in levels:
            jobs.append((name, level, unroll_limit,
                         points_to, verify, str(cache.root)))

    pending = [job for job in jobs
               if not cache.contains(_job_key(cache, job))]
    workers = max_workers or min(len(pending) or 1, os.cpu_count() or 1)
    # (kernel, level) -> exception raised inside a worker. Deterministic
    # worker failures are reported as-is; only jobs the pool never
    # finished (broken pool, no process primitives) compile in-process.
    worker_failures: dict[tuple[str, str], BaseException] = {}
    if parallel and len(pending) > 1 and workers > 1:
        worker_failures = _compile_in_pool(pending, workers)

    results: dict[tuple[str, str], object] = {}
    failures: dict[tuple[str, str], BaseException] = {}
    for job in jobs:
        name, level = job[0], job[1]
        key = _job_key(cache, job)
        program = cache.get(key)
        if program is None:
            if (name, level) in worker_failures:
                # Already ran (and failed) in a worker: report the
                # original exception instead of executing twice.
                failures[(name, level)] = worker_failures[(name, level)]
                continue
            try:
                _compile_job(job)
            except ReproError as error:
                failures[(name, level)] = error
                continue
            program = cache.get(key)
        results[(name, level)] = program
    if failures:
        raise ParallelCompilationError(failures)
    return results


def _compile_in_pool(pending, workers) -> dict[tuple[str, str], BaseException]:
    """Fan ``pending`` jobs out over the pool backend, one future per job.

    Returns per-(kernel, level) worker exceptions; never raises. A
    broken pool (crashed worker) or missing process primitives simply
    leave the remaining jobs uncompiled — the caller's in-process pass
    picks up whatever never produced an artifact.
    """
    failures: dict[tuple[str, str], BaseException] = {}
    executor = PoolExecutor(max_workers=workers)
    try:
        futures = [(executor.submit(_compile_job, job), job)
                   for job in pending]
        for future, job in futures:
            name, level = job[0], job[1]
            try:
                future.result()
            except BrokenProcessPool:
                # The worker died (OOM-kill, segfault): every future
                # after this is dead too. Leave them to the in-process
                # fallback rather than recording a crash that a clean
                # retry may not reproduce.
                break
            except (OSError, PermissionError):
                break  # pool infrastructure failed mid-flight
            except BaseException as error:  # noqa: BLE001
                failures[(name, level)] = error
    finally:
        executor.shutdown()
    return failures


#: Sentinel for "this job has not produced a result yet" (None is a
#: legitimate job result, so it cannot mark pending slots).
_PENDING = object()
#: Sentinel for "this job ran in a worker and raised".
_FAILED = object()


def run_jobs(func, jobs, *, max_workers: int | None = None,
             parallel: bool = True) -> list:
    """Map ``func`` over argument tuples, process-parallel, in input order.

    The sweep-harness sibling of :func:`compile_kernels`: each element of
    ``jobs`` is a tuple of positional arguments for one call, every call
    is submitted as its own future, and the returned list holds the
    results in input order. ``func`` and every argument/result must
    pickle (module-level functions and plain dataclasses do).

    Failure semantics match ``parallel=False``: a job that raises
    surfaces its exception in the caller — executed exactly once (the
    batch still drains first, so every other job completes). Retry is
    not this wrapper's business; callers that want per-job retry,
    checkpointing, or degraded continuation declare a DAG and run it
    through :class:`~repro.orchestrate.scheduler.Scheduler`. A crashed
    worker or missing process primitives degrade to in-process execution
    for the jobs that never completed.
    """
    jobs = [tuple(job) for job in jobs]
    results: list = [_PENDING] * len(jobs)
    first_error: BaseException | None = None
    workers = max_workers or min(len(jobs) or 1, os.cpu_count() or 1)
    if parallel and len(jobs) > 1 and workers > 1:
        executor = PoolExecutor(max_workers=workers)
        try:
            futures = [(executor.submit(func, *job), index)
                       for index, job in enumerate(jobs)]
            for future, index in futures:
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    break  # pool is dead; the rest run in-process
                except (OSError, PermissionError) as error:
                    # Could be pool infrastructure *or* the job itself;
                    # either way the job already ran — do not re-run it.
                    results[index] = _FAILED
                    if first_error is None:
                        first_error = error
                except BaseException as error:  # noqa: BLE001
                    results[index] = _FAILED
                    if first_error is None:
                        first_error = error
        finally:
            executor.shutdown()
    for index, job in enumerate(jobs):
        if results[index] is _PENDING:
            results[index] = func(*job)
    if first_error is not None:
        raise first_error
    return results


def _job_key(cache: CompilationCache, job: tuple) -> str:
    name, level, unroll_limit, entry_points_to, verify, _root = job
    from repro.programs import get_kernel
    kernel = get_kernel(name)
    config = _job_config(level, unroll_limit, entry_points_to, verify)
    return cache.key(kernel.source, kernel.entry, config)
