"""Persistent telemetry store: append-only JSONL segments plus an index.

Every :class:`~repro.observe.telemetry.RunRecord` a
:class:`~repro.observe.telemetry.TelemetrySession` produces lands here,
content-addressed and durable, so any two runs — today's and last
month's, one kernel and a whole figure sweep — can be diffed with
:mod:`repro.observe.diff` long after the processes that made them exited.

Layout (``$REPRO_TELEMETRY_DIR`` or ``.repro/telemetry/`` under the
current directory; no dependencies beyond the standard library)::

    .repro/telemetry/
        index.jsonl              # one summary line per record
        segments/<session>.jsonl # full records, one JSON object per line

Records are grouped into one segment file per recording session and
identified by ``run_id`` — the SHA-256 of the record's canonical JSON —
so identical payloads deduplicate and an id can be checked against its
content. The store is append-only in normal operation; :meth:`gc` is the
one compaction path (drop whole segments by age or recency, then rewrite
the index atomically).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.errors import ReproError

#: Environment override for the store root.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"
DEFAULT_ROOT = Path(".repro") / "telemetry"


class TelemetryStoreError(ReproError):
    """A malformed store, unknown run id, or ambiguous prefix."""


def content_address(payload: dict) -> str:
    """The run id of a record payload: SHA-256 of its canonical JSON.

    The ``run_id`` key itself is excluded so the address is stable
    whether or not the payload already carries one.
    """
    scrubbed = {k: v for k, v in payload.items() if k != "run_id"}
    canonical = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _index_line(payload: dict, segment: str) -> dict:
    """The denormalized summary of one record kept in ``index.jsonl``."""
    result = payload.get("result") or {}
    config = payload.get("config") or {}
    return {
        "run_id": payload["run_id"],
        "segment": segment,
        "kind": payload.get("kind", "run"),
        "session": payload.get("session"),
        "entry": payload.get("entry"),
        "kernel": (payload.get("tags") or {}).get("kernel"),
        "opt_level": config.get("opt_level"),
        "engine": payload.get("engine"),
        "memsys": payload.get("memsys"),
        "cycles": result.get("cycles"),
        "created_at": payload.get("created_at"),
    }


class TelemetryStore:
    """The on-disk run-record store (see the module docstring)."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get(TELEMETRY_DIR_ENV) or DEFAULT_ROOT
        self.root = Path(root)
        self.index_path = self.root / "index.jsonl"
        self.segments_dir = self.root / "segments"
        # Serializes appends from concurrent threads/asyncio tasks of
        # one process: the duplicate check and the two file appends are
        # one atomic step, so segment lines never interleave and an
        # identical record racing itself is still written exactly once.
        # (Separate *processes* write separate segment files instead —
        # see TelemetrySession.segment.)
        self._append_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writing

    def append(self, record, segment: str = "adhoc") -> str:
        """Persist one record; returns its (content-addressed) run id.

        ``record`` is a :class:`~repro.observe.telemetry.RunRecord` or an
        equivalent payload dict. An exact duplicate of an already-stored
        record is not re-appended (same content, same id).
        """
        payload = record if isinstance(record, dict) else record.to_dict()
        run_id = content_address(payload)
        payload = dict(payload, run_id=run_id)
        if not isinstance(record, dict):
            record.run_id = run_id
        with self._append_lock:
            if self._find(run_id) is not None:
                return run_id
            self.segments_dir.mkdir(parents=True, exist_ok=True)
            segment_name = f"{_safe_segment(segment)}.jsonl"
            with open(self.segments_dir / segment_name, "a") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
            with open(self.index_path, "a") as handle:
                handle.write(json.dumps(_index_line(payload, segment_name),
                                        sort_keys=True) + "\n")
        return run_id

    # ------------------------------------------------------------------
    # Reading

    def index(self) -> list[dict]:
        """Every index line, oldest first ([] for a fresh store)."""
        if not self.index_path.exists():
            return []
        lines = []
        with open(self.index_path) as handle:
            for raw in handle:
                raw = raw.strip()
                if raw:
                    lines.append(json.loads(raw))
        return lines

    def get(self, run_id: str):
        """The full record for a run id (unique prefixes accepted)."""
        entry = self._find(run_id, prefix=True)
        if entry is None:
            raise TelemetryStoreError(f"no run {run_id!r} in {self.root}")
        for payload in self._segment_payloads(entry["segment"]):
            if payload.get("run_id") == entry["run_id"]:
                from repro.observe.telemetry import RunRecord
                return RunRecord.from_dict(payload)
        raise TelemetryStoreError(
            f"index names run {entry['run_id']} in segment "
            f"{entry['segment']}, but the segment does not contain it")

    def records(self, *, session: str | None = None,
                kind: str | None = None,
                kernel: str | None = None) -> list:
        """Full records matching the filters, oldest first."""
        from repro.observe.telemetry import RunRecord
        selected = []
        wanted_segments = {}
        for entry in self.index():
            if session is not None and entry.get("session") != session:
                continue
            if kind is not None and entry.get("kind") != kind:
                continue
            if kernel is not None and entry.get("kernel") != kernel:
                continue
            wanted_segments.setdefault(entry["segment"], set()).add(
                entry["run_id"])
        for segment, ids in wanted_segments.items():
            for payload in self._segment_payloads(segment):
                if payload.get("run_id") in ids:
                    selected.append(RunRecord.from_dict(payload))
        selected.sort(key=lambda record: record.created_at)
        return selected

    def sessions(self) -> dict[str, int]:
        """session id -> record count, insertion order preserved."""
        counts: dict[str, int] = {}
        for entry in self.index():
            session = entry.get("session") or "-"
            counts[session] = counts.get(session, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Compaction

    def gc(self, *, keep_sessions: int | None = None,
           max_age_days: float | None = None,
           now: float | None = None,
           dry_run: bool = False) -> list[str]:
        """Drop whole segments, then rewrite the index atomically.

        A segment survives if any of its records is newer than the age
        cutoff or belongs to one of the ``keep_sessions`` most recent
        sessions. Returns the names of the segments removed (or, with
        ``dry_run``, the ones that would be).
        """
        if keep_sessions is None and max_age_days is None:
            return []
        import time
        now = time.time() if now is None else now
        entries = self.index()
        recent_sessions: set[str] = set()
        if keep_sessions is not None:
            seen: list[str] = []
            for entry in reversed(entries):
                session = entry.get("session") or "-"
                if session not in seen:
                    seen.append(session)
                if len(seen) >= keep_sessions:
                    break
            recent_sessions = set(seen)
        doomed: set[str] = set()
        survivors: set[str] = set()
        for entry in entries:
            keep = False
            if keep_sessions is not None and \
                    (entry.get("session") or "-") in recent_sessions:
                keep = True
            if max_age_days is not None:
                age_days = (now - (entry.get("created_at") or 0)) / 86400.0
                if age_days <= max_age_days:
                    keep = True
            (survivors if keep else doomed).add(entry["segment"])
        doomed -= survivors
        if not dry_run:
            for segment in doomed:
                path = self.segments_dir / segment
                if path.exists():
                    path.unlink()
            kept = [entry for entry in entries
                    if entry["segment"] not in doomed]
            tmp = self.index_path.with_suffix(".jsonl.tmp")
            with open(tmp, "w") as handle:
                for entry in kept:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            tmp.replace(self.index_path)
        return sorted(doomed)

    # ------------------------------------------------------------------

    def _find(self, run_id: str, prefix: bool = False) -> dict | None:
        matches = []
        for entry in self.index():
            stored = entry.get("run_id", "")
            if stored == run_id or (prefix and stored.startswith(run_id)):
                matches.append(entry)
                if stored == run_id:
                    return entry
        if not matches:
            return None
        ids = {entry["run_id"] for entry in matches}
        if len(ids) > 1:
            raise TelemetryStoreError(
                f"run id prefix {run_id!r} is ambiguous "
                f"({len(ids)} matches)")
        return matches[0]

    def _segment_payloads(self, segment: str):
        path = self.segments_dir / segment
        if not path.exists():
            return
        with open(path) as handle:
            for raw in handle:
                raw = raw.strip()
                if raw:
                    yield json.loads(raw)


def _safe_segment(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)
    return safe or "adhoc"
