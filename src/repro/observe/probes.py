"""The probe bus: typed observation hooks inside the dataflow simulator.

The simulator and memory system expose a small set of *hook points*; a
:class:`ProbeBus` fans each one out to the listeners that subscribed to
it. The contract is built for zero cost when observation is off:

- each hook is a plain attribute on the bus (``fire``, ``emit``,
  ``enqueue``, ``dequeue``, ``mem_access``, ``lsq``) that is **None**
  until a listener subscribes to it;
- the simulator caches these attributes into locals at the start of
  ``run()`` and guards every hook site with a single ``is not None``
  test — with no bus (or an empty bus) the instrumented path is
  machine-identical to the uninstrumented one up to that test
  (``benchmarks/bench_observe_overhead.py`` holds the line at 5%);
- listeners therefore must subscribe **before** the simulation starts;
  subscribing mid-run is not observed.

Hook points and their signatures (all times in simulated cycles):

===========  ========================================================
hook         arguments
===========  ========================================================
fire         (node, time) — one operator firing; the single source of
             truth also backing ``DataflowResult.fire_counts``
emit         (node, outputs, at) — the firing's results become visible
             at cycle ``at`` (memory ops: the access completion)
enqueue      (producer, consumer, slot, time) — a value lands on the
             consumer's input queue ``slot``
dequeue      (node, slot, time) — a queued value is consumed
mem_access   (now, start, done, addr, width, is_write, level,
             tlb_miss) — one memory operation: issued at ``now``,
             wins an LSQ port at ``start``, completes at ``done``;
             ``level`` is "perfect" | "l1" | "l2" | "mem"
lsq          (now, depth, port_wait) — LSQ occupancy at issue time and
             the cycles the access waited for a free port
===========  ========================================================

A listener is any object with ``on_<hook>`` methods for the hooks it
cares about; :meth:`ProbeBus.subscribe` wires only those.
"""

from __future__ import annotations

from collections import deque

#: Hook names a listener may implement (as ``on_<name>`` methods).
HOOKS = ("fire", "emit", "enqueue", "dequeue", "mem_access", "lsq")


class ProbeBus:
    """Fans hook invocations out to subscribed listeners.

    Each hook attribute is ``None`` (no listener — instrumentation
    sites skip the call entirely), a single bound method (one
    listener — no dispatch loop), or a multicast closure.
    """

    __slots__ = tuple(HOOKS) + ("_listeners",)

    def __init__(self):
        for hook in HOOKS:
            setattr(self, hook, None)
        self._listeners: list[object] = []

    # ------------------------------------------------------------------

    def subscribe(self, listener: object) -> object:
        """Wire ``listener``'s ``on_<hook>`` methods into the bus."""
        self._listeners.append(listener)
        for hook in HOOKS:
            handler = getattr(listener, f"on_{hook}", None)
            if handler is None:
                continue
            current = getattr(self, hook)
            if current is None:
                setattr(self, hook, handler)
            else:
                setattr(self, hook, _multicast(current, handler))
        return listener

    @property
    def listeners(self) -> tuple[object, ...]:
        return tuple(self._listeners)

    def find(self, kind: type) -> object | None:
        """The first subscribed listener of class ``kind``, if any."""
        for listener in self._listeners:
            if isinstance(listener, kind):
                return listener
        return None


def _multicast(first, second):
    def dispatch(*args):
        first(*args)
        second(*args)
    return dispatch


class HistoryRing:
    """Bounded ring of recent firings, for wedge/deadlock forensics.

    Deadlock reports answer "what is stuck *now*"; the ring answers
    "what was the circuit doing *just before* it stuck" — the last
    ``capacity`` (node id, cycle) firing events, plus the last cycle
    each node fired, so a post-mortem can separate nodes that went
    quiet early from ones active until the end.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.events: deque[tuple[int, int]] = deque(maxlen=capacity)
        self.last_fired: dict[int, int] = {}

    def on_fire(self, node, time: int) -> None:
        self.events.append((node.id, time))
        self.last_fired[node.id] = time

    def tail(self, count: int = 16) -> list[tuple[int, int]]:
        """The most recent ``count`` (node id, cycle) firings."""
        if count >= len(self.events):
            return list(self.events)
        return list(self.events)[-count:]
