"""Dynamic critical-path analysis over one dataflow execution.

The simulator's cycle count is bounded by one chain of dependent events:
each firing happens when its *last-arriving* input lands, and that input
was produced by an earlier firing. Walking last-arriving inputs backward
from the return recovers the executed dependence chain that the paper's
argument is about (§2, §7): is the bound a memory dependence, pipelined
compute, token serialization, or control steering?

:class:`CriticalPathTracker` is a probe-bus listener. During the run it
keeps, per firing, the arrival time of the last-arriving consumed input
and the firing that produced it (resolved eagerly, O(1) per event, via
shadow queues mirroring the simulator's FIFOs). After the run,
:meth:`analyze` walks the chain and attributes **every** cycle between 0
and the cycle count to a (node, category) pair:

- the firing's own service time (``done - start``) goes to its node's
  category — ``compute`` (ALU/mux/cast), ``memory`` (load/store,
  including in-order completion delays), ``token`` (combine, token
  generators, token-class merges/etas), or ``control`` (merges, etas,
  control streams, return);
- time a firing spent waiting beyond its inputs' arrival (token-credit
  starvation in a token generator, queued values awaiting a merge
  decision) goes to ``token``.

By construction consecutive chain hops abut in time, so the per-category
totals sum *exactly* to the simulated cycle count — the self-consistency
the figure harnesses and tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.pegasus import nodes as N

CATEGORIES = ("compute", "memory", "token", "control")

#: How many chain hops a report keeps verbatim (closest to the return).
MAX_SEGMENTS = 4096


class ObservabilityError(ReproError):
    """An observation could not be completed (e.g. tracker overflow)."""


def categorize(node: N.Node) -> str:
    """The attribution category of one operator."""
    if isinstance(node, (N.LoadNode, N.StoreNode)):
        return "memory"
    if isinstance(node, (N.BinOpNode, N.UnOpNode, N.CastNode, N.MuxNode)):
        return "compute"
    if isinstance(node, (N.CombineNode, N.TokenGenNode, N.InitialTokenNode)):
        return "token"
    if isinstance(node, (N.MergeNode, N.EtaNode)):
        if getattr(node, "value_class", None) == N.TOKEN:
            return "token"
        return "control"
    return "control"  # control stream, return


@dataclass(frozen=True)
class Segment:
    """One hop of the executed critical path (walking backward in time)."""

    node_id: int
    label: str
    category: str
    start: int      # cycle the firing happened (last input arrival)
    done: int       # cycle its result became visible
    wait: int       # cycles waited beyond input arrival (token starvation)

    @property
    def cycles(self) -> int:
        return (self.done - self.start) + self.wait


@dataclass
class CriticalPathReport:
    """Where every cycle of the simulated execution went."""

    graph_name: str
    cycles: int
    by_category: dict[str, int] = field(default_factory=dict)
    # node id -> (label, category, attributed cycles, hops on the path)
    by_node: dict[int, tuple[str, str, int, int]] = field(default_factory=dict)
    chain_length: int = 0
    segments: list[Segment] = field(default_factory=list)
    truncated_segments: int = 0

    def share(self, category: str) -> float:
        if self.cycles == 0:
            return 0.0
        return self.by_category.get(category, 0) / self.cycles

    def top_nodes(self, count: int = 10) -> list[tuple[str, str, int, int]]:
        ranked = sorted(self.by_node.values(), key=lambda e: (-e[2], e[0]))
        return ranked[:count]

    def render(self, top: int = 10) -> str:
        lines = [f"critical path for '{self.graph_name}': "
                 f"{self.cycles} cycles over {self.chain_length} firings"]
        for category in CATEGORIES:
            attributed = self.by_category.get(category, 0)
            lines.append(f"  {category:8s} {attributed:10d} cycles "
                         f"({100.0 * self.share(category):5.1f}%)")
        if self.by_node:
            lines.append("hottest operators on the path:")
            for label, category, cycles, hops in self.top_nodes(top):
                lines.append(f"  {label:>20s} [{category}] "
                             f"{cycles} cycles over {hops} firings")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "graph": self.graph_name,
            "cycles": self.cycles,
            "by_category": dict(self.by_category),
            "by_node": [
                {"id": node_id, "label": label, "category": category,
                 "cycles": cycles, "hops": hops}
                for node_id, (label, category, cycles, hops)
                in sorted(self.by_node.items())
            ],
            "chain_length": self.chain_length,
            "truncated_segments": self.truncated_segments,
            "segments": [
                {"id": s.node_id, "label": s.label, "category": s.category,
                 "start": s.start, "done": s.done, "wait": s.wait}
                for s in self.segments
            ],
        }


# Record layout (a list, mutated once when the emit lands):
_CAT, _NODE, _START, _DONE, _ARR, _PRED = range(6)


class CriticalPathTracker:
    """Probe listener recovering the executed dependence chain.

    Subscribes to ``fire``/``emit``/``enqueue``/``dequeue``. Per firing it
    stores ``[category, node id, start, done, last-arrival, predecessor
    record]`` — constant work per event, memory linear in firings
    (bounded by ``max_records``).
    """

    def __init__(self, max_records: int = 4_000_000):
        self.max_records = max_records
        self._records: list[list] = []
        # (consumer id, slot) -> deque of (enqueue time, producer record).
        self._shadow: dict[tuple[int, int], deque] = {}
        # Producer id -> deque of (visible-at time, record) emissions
        # not yet fully delivered; pruned as deliveries advance in time.
        self._emissions: dict[int, deque] = {}
        # Consumed-input arrivals buffered between dequeue and fire.
        self._pending: dict[int, list[tuple[int, int | None]]] = {}
        self._open: dict[int, int] = {}
        self._return: int | None = None
        self._overflow = False

    # ------------------------------------------------------------------
    # Probe handlers

    def on_enqueue(self, producer: N.Node, consumer: N.Node, slot: int,
                   time: int) -> None:
        if self._overflow:
            return
        record = None
        emitted = self._emissions.get(producer.id)
        if emitted:
            # Deliveries advance in simulated time: emissions strictly
            # older than this delivery are fully drained — drop them.
            while emitted and emitted[0][0] < time:
                emitted.popleft()
            if emitted and emitted[0][0] == time:
                record = emitted[0][1]
        key = (consumer.id, slot)
        shadow = self._shadow.get(key)
        if shadow is None:
            shadow = self._shadow[key] = deque()
        shadow.append((time, record))

    def on_dequeue(self, node: N.Node, slot: int, time: int) -> None:
        if self._overflow:
            return
        shadow = self._shadow.get((node.id, slot))
        entry = shadow.popleft() if shadow else (0, None)
        self._pending.setdefault(node.id, []).append(entry)

    def on_fire(self, node: N.Node, time: int) -> None:
        if self._overflow:
            return
        if len(self._records) >= self.max_records:
            self._overflow = True
            return
        consumed = self._pending.pop(node.id, None)
        if consumed:
            arrival, pred = max(consumed, key=lambda entry: entry[0])
        else:
            arrival, pred = 0, None
        index = len(self._records)
        self._records.append([categorize(node), node.id, time, time,
                              arrival, pred])
        self._open[node.id] = index
        if isinstance(node, N.ReturnNode):
            self._return = index

    def on_emit(self, node: N.Node, outputs, at: int) -> None:
        if self._overflow:
            return
        index = self._open.pop(node.id, None)
        if index is None:
            # A sourceless emission (initial-token priming): synthesize a
            # record so downstream consumers have a chain anchor.
            if len(self._records) >= self.max_records:
                self._overflow = True
                return
            index = len(self._records)
            self._records.append([categorize(node), node.id, at, at, 0, None])
        else:
            self._records[index][_DONE] = at
        emitted = self._emissions.get(node.id)
        if emitted is None:
            emitted = self._emissions[node.id] = deque()
        emitted.append((at, index))

    # ------------------------------------------------------------------

    def analyze(self, graph, cycles: int) -> CriticalPathReport:
        """Walk the chain backward from the return firing and attribute
        every cycle in ``[0, cycles]`` to a node and category."""
        if self._overflow:
            raise ObservabilityError(
                f"critical-path tracker overflowed {self.max_records} "
                f"firing records; raise max_records or profile a shorter run"
            )
        report = CriticalPathReport(
            graph_name=graph.name, cycles=cycles,
            by_category={category: 0 for category in CATEGORIES},
        )
        if self._return is None:
            return report  # never completed; nothing to attribute
        records = self._records
        index: int | None = self._return
        # The return's firing *is* the completion; any later bookkeeping
        # cycles (there normally are none) stay attributed to control.
        slack = cycles - records[self._return][_DONE]
        if slack > 0:
            report.by_category["control"] += slack
        while index is not None:
            category, node_id, start, done, arrival, pred = records[index]
            own = done - start
            wait = start - arrival
            report.by_category[category] += own
            report.by_category["token"] += wait
            node = graph.nodes.get(node_id)
            label = f"{node.label()}#{node_id}" if node else f"#{node_id}"
            old = report.by_node.get(node_id)
            attributed = own + wait
            if old is None:
                report.by_node[node_id] = (label, category, attributed, 1)
            else:
                report.by_node[node_id] = (label, category,
                                           old[2] + attributed, old[3] + 1)
            report.chain_length += 1
            if len(report.segments) < MAX_SEGMENTS:
                report.segments.append(Segment(
                    node_id=node_id, label=label, category=category,
                    start=start, done=done, wait=wait))
            else:
                report.truncated_segments += 1
            if pred is not None and pred >= index:
                raise ObservabilityError(
                    f"critical-path chain does not move backward at "
                    f"record {index} (pred {pred})"
                )
            if pred is None and arrival > 0:
                # The chain bottoms out above cycle 0 (an unattributable
                # arrival, e.g. a token generator's buffered credit):
                # token plumbing by definition.
                report.by_category["token"] += arrival
            index = pred
        return report
