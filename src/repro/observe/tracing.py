"""Distributed tracing: one correlated timeline across processes.

The observability built so far answers "why was this simulation slow"
(probe bus, profiler, critical path) and "what did this run produce"
(telemetry RunRecords) — but the system is distributed now: a service
request fans into a batcher, a pool worker, a scheduler attempt, maybe
a remote worker under a lease, and no single artifact shows where the
wall-clock went *across* those processes. This module is that artifact:

- a **span** is ``(trace_id, span_id, parent_id, name, tags,
  start/end in wall-clock ns)``; spans form a tree rooted at the sweep
  or service request that started the trace;
- an ambient :class:`Tracer` (same stack discipline as
  :class:`~repro.observe.telemetry.TelemetrySession`) makes
  :func:`span` a one-``if`` no-op when tracing is off — instrumented
  code tags unconditionally and pays nothing unless someone is tracing;
- every process appends its spans to its **own JSONL shard**
  (``shard-<host>-<pid>.jsonl`` under the trace directory), written
  through :class:`~repro.orchestrate.journal.Journal` so a process
  SIGKILLed mid-write leaves a torn tail that heals on load exactly
  like a sweep journal shard;
- the ambient context crosses process boundaries as a plain dict
  (:func:`propagation_context` on the sending side,
  :func:`adopt_context` in the worker), so a remote worker's job span
  parents under the coordinator's sweep span with no protocol changes;
- :func:`read_trace` merges the shards on demand (read-only, torn
  tails healed) and :func:`trace_events` renders the span tree as
  Chrome/Perfetto trace-event JSON that passes
  :func:`~repro.observe.export.validate_trace_events` — one process
  per track, µs timestamps relative to the trace start.

Timestamps are ``time.time_ns()`` (wall clock), not monotonic ns:
monotonic clocks are incomparable across processes, and a distributed
timeline is exactly the cross-process case. Same-host skew is sub-µs;
cross-host skew is whatever NTP leaves (the tags carry ``host`` so a
skewed remote track is at least attributable).

CLI (``repro trace ...``)::

    repro trace list
    repro trace show fig19            # span tree, by sweep/tag/id prefix
    repro trace export fig19 --out fig19.json   # Perfetto JSON
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Trace shards land here unless a Tracer names its own directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
DEFAULT_TRACE_DIR = ".repro/traces"

#: Journal entry statuses for spans: ``span-open`` is written when a
#: span starts (so a SIGKILLed process leaves evidence of in-flight
#: work), ``span`` supersedes it (same key) when the span finishes.
SPAN_OPEN = "span-open"
SPAN_DONE = "span"

# Innermost-active-tracer stack (per process), mirroring telemetry's
# _ACTIVE; the (trace_id, span_id) cursor is a ContextVar so concurrent
# asyncio tasks / threads each see their own current span.
_TRACERS: list["Tracer"] = []
_CONTEXT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_trace_context", default=None)

# Tracers materialized by adopt_context, cached per (dir, pid) so a
# worker looping over jobs reuses one shard journal.
_ADOPTED: dict[tuple[str, int], "Tracer"] = {}


def current_tracer() -> "Tracer | None":
    """The innermost active tracer, or None (tracing inert)."""
    return _TRACERS[-1] if _TRACERS else None


def current_trace_id() -> str | None:
    """The ambient trace id, or None outside any span / without a
    tracer — how RunRecords and trace spans share an identity."""
    if not _TRACERS:
        return None
    current = _CONTEXT.get()
    return current[0] if current else None


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed, tagged interval in one process."""

    trace: str
    span: str
    parent: str | None
    name: str
    start_ns: int
    end_ns: int | None = None
    tags: dict = field(default_factory=dict)
    host: str = ""
    pid: int = 0
    ok: bool = True
    error: str | None = None

    @property
    def duration_ns(self) -> int:
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    @property
    def open(self) -> bool:
        """True for a span whose process died before finishing it."""
        return self.end_ns is None

    def to_entry(self, status: str) -> dict:
        """The journal-shard line for this span (``key``/``status`` are
        the Journal contract; ``ts`` is the merge tiebreaker, so the
        finished entry always supersedes the open one)."""
        entry = {"key": self.span, "status": status, "name": self.name,
                 "trace": self.trace, "parent": self.parent,
                 "start_ns": self.start_ns, "end_ns": self.end_ns,
                 "tags": dict(self.tags), "host": self.host,
                 "pid": self.pid, "ok": self.ok,
                 "ts": round(time.time(), 6)}
        if self.error is not None:
            entry["error"] = self.error
        return entry

    @classmethod
    def from_entry(cls, entry: dict) -> "Span":
        return cls(trace=entry.get("trace", ""), span=entry["key"],
                   parent=entry.get("parent"),
                   name=entry.get("name", entry["key"]),
                   start_ns=int(entry.get("start_ns", 0)),
                   end_ns=entry.get("end_ns"),
                   tags=dict(entry.get("tags") or {}),
                   host=entry.get("host", ""),
                   pid=int(entry.get("pid", 0)),
                   ok=bool(entry.get("ok", True)),
                   error=entry.get("error"))


class Tracer:
    """Appends finished spans to this process's shard file.

    A context manager: entering pushes it onto the ambient stack (so
    :func:`span` starts recording), exiting pops it. The shard path is
    keyed by host and pid and re-derived on every write, so a forked
    child that inherits the parent's tracer object transparently gets
    its own shard instead of interleaving appends into the parent's.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        root = root or os.environ.get(TRACE_DIR_ENV) or DEFAULT_TRACE_DIR
        self.root = Path(root).resolve()
        self.host = socket.gethostname()
        #: Trace ids of root spans started under this tracer, in order
        #: (how ``sweep run --trace`` finds what to export).
        self.traces: list[str] = []
        self._journal = None
        self._journal_pid: int | None = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "Tracer":
        _TRACERS.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _TRACERS.remove(self)

    # ------------------------------------------------------------------

    def _shard(self):
        """This process's shard journal (re-targeted after a fork)."""
        from repro.orchestrate.journal import Journal, shard_path
        pid = os.getpid()
        if self._journal is None or self._journal_pid != pid:
            self.root.mkdir(parents=True, exist_ok=True)
            self._journal = Journal(shard_path(self.root,
                                               f"{self.host}-{pid}"))
            self._journal_pid = pid
        return self._journal

    def write(self, span: Span, status: str = SPAN_DONE) -> None:
        span.host = span.host or self.host
        span.pid = span.pid or os.getpid()
        self._shard().absorb(span.to_entry(status))


# ----------------------------------------------------------------------
# The ambient span API — what instrumented code calls.


@contextmanager
def span(name: str, **tags):
    """Record one span around the block; a no-op yielding None when no
    tracer is active (the zero-cost guard every call site relies on).

    Without an enclosing span a fresh ``trace_id`` is minted and this
    span becomes a root; otherwise it parents under the ambient span.
    ``None``-valued tags are dropped so call sites can pass optional
    identity fields unconditionally.
    """
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    parent = _CONTEXT.get()
    trace_id = parent[0] if parent else _new_id()
    current = Span(
        trace=trace_id, span=_new_id(),
        parent=parent[1] if parent else None, name=name,
        start_ns=time.time_ns(),
        tags={key: value for key, value in tags.items()
              if value is not None})
    if parent is None:
        tracer.traces.append(trace_id)
    token = _CONTEXT.set((current.trace, current.span))
    tracer.write(current, SPAN_OPEN)
    try:
        yield current
    except BaseException as error:
        current.ok = False
        current.error = f"{type(error).__name__}: {error}"
        raise
    finally:
        current.end_ns = time.time_ns()
        tracer.write(current, SPAN_DONE)
        _CONTEXT.reset(token)


def propagation_context() -> dict | None:
    """The ambient trace position as a picklable dict, or None.

    Ship this across a process boundary and hand it to
    :func:`adopt_context` on the far side; spans opened there parent
    under the sending side's current span and append to the *worker's
    own* shard in the same trace directory.
    """
    tracer = current_tracer()
    if tracer is None:
        return None
    current = _CONTEXT.get()
    return {"dir": str(tracer.root),
            "trace": current[0] if current else None,
            "span": current[1] if current else None}


@contextmanager
def adopt_context(ctx: dict | None):
    """Continue a propagated trace in this process.

    No-op for ``ctx=None`` (the caller was not tracing). Otherwise
    ensures a tracer writing to this process's shard under
    ``ctx["dir"]`` is active (reusing a cached one across jobs —
    shards are append-only, so one Journal per (dir, pid) is enough)
    and positions the ambient cursor at the propagated span.
    """
    if not ctx or not ctx.get("dir"):
        yield
        return
    pushed = None
    if current_tracer() is None:
        key = (str(ctx["dir"]), os.getpid())
        pushed = _ADOPTED.get(key)
        if pushed is None:
            pushed = Tracer(ctx["dir"])
            _ADOPTED[key] = pushed
        _TRACERS.append(pushed)
    position = None
    if ctx.get("trace") and ctx.get("span"):
        position = (ctx["trace"], ctx["span"])
    token = _CONTEXT.set(position)
    try:
        yield
    finally:
        _CONTEXT.reset(token)
        if pushed is not None:
            _TRACERS.remove(pushed)


# ----------------------------------------------------------------------
# Merging and rendering — the coordinator/CLI side.


def read_trace(root: str | os.PathLike | None = None,
               trace_id: str | None = None) -> list[Span]:
    """Merged spans from every shard under ``root`` (torn tails healed
    by the Journal loader), optionally filtered to one trace, sorted by
    start time. Spans whose process died mid-flight come back with
    ``end_ns=None`` (``span.open``)."""
    from repro.orchestrate.journal import read_shards
    root = Path(root or os.environ.get(TRACE_DIR_ENV) or DEFAULT_TRACE_DIR)
    spans = [Span.from_entry(entry)
             for entry in read_shards(root).values()
             if entry.get("status") in (SPAN_OPEN, SPAN_DONE)]
    if trace_id is not None:
        spans = [s for s in spans if s.trace == trace_id]
    return sorted(spans, key=lambda s: (s.start_ns, s.span))


def list_traces(root: str | os.PathLike | None = None) -> list[dict]:
    """One summary per trace id found under ``root``, oldest first."""
    by_trace: dict[str, list[Span]] = {}
    for item in read_trace(root):
        by_trace.setdefault(item.trace, []).append(item)
    summaries = []
    for trace_id, spans in by_trace.items():
        roots = [s for s in spans if s.parent is None]
        root_span = roots[0] if roots else spans[0]
        ends = [s.end_ns for s in spans if s.end_ns is not None]
        summaries.append({
            "trace": trace_id,
            "root": root_span.name,
            "tags": dict(root_span.tags),
            "spans": len(spans),
            "open": sum(1 for s in spans if s.open),
            "hosts": sorted({f"{s.host}-{s.pid}" for s in spans}),
            "start_ns": min(s.start_ns for s in spans),
            "duration_ns": (max(ends) - min(s.start_ns for s in spans)
                            if ends else 0),
        })
    return sorted(summaries, key=lambda s: s["start_ns"])


def find_trace_id(root: str | os.PathLike | None, needle: str) -> str:
    """Resolve a CLI operand to one trace id.

    Matches, in order: a trace-id prefix, a root span name (with or
    without its ``sweep:``/``request:`` prefix), any root-span tag
    value (dag, session, request, ...). Ambiguity and absence raise.
    """
    summaries = list_traces(root)
    if not summaries:
        raise ReproError(f"no traces under "
                         f"{root or os.environ.get(TRACE_DIR_ENV) or DEFAULT_TRACE_DIR}")
    matches = [s for s in summaries if s["trace"].startswith(needle)]
    if not matches:
        matches = [s for s in summaries
                   if s["root"] == needle
                   or s["root"].split(":", 1)[-1] == needle
                   or needle in {str(v) for v in s["tags"].values()}]
    if not matches:
        names = ", ".join(sorted({s["root"] for s in summaries}))
        raise ReproError(f"no trace matches {needle!r} (have: {names})")
    if len(matches) > 1:
        # Prefer the newest when a sweep name matches several runs.
        matches = [max(matches, key=lambda s: s["start_ns"])]
    return matches[0]["trace"]


def span_children(spans: list[Span]) -> dict[str | None, list[Span]]:
    """parent span id -> children, each list in start order. Children
    whose parent span is absent (a dead coordinator, a pruned shard)
    are grafted under ``None`` alongside the true roots — the tree
    renders and exports even from partial evidence."""
    present = {item.span for item in spans}
    children: dict[str | None, list[Span]] = {}
    for item in spans:
        parent = item.parent if item.parent in present else None
        children.setdefault(parent, []).append(item)
    return children


def render_tree(spans: list[Span]) -> str:
    """The span tree as indented text (``repro trace show``)."""
    if not spans:
        return "(no spans)"
    children = span_children(spans)
    lines: list[str] = []

    def visit(item: Span, depth: int) -> None:
        duration = (f"{item.duration_ns / 1e6:.2f} ms"
                    if not item.open else "OPEN (never finished)")
        status = "" if item.ok else "  FAILED"
        where = f"{item.host}-{item.pid}"
        tags = " ".join(f"{k}={v}" for k, v in sorted(item.tags.items()))
        lines.append(f"{'  ' * depth}{item.name}  [{duration}]  "
                     f"({where}){status}" + (f"  {tags}" if tags else ""))
        for child in children.get(item.span, []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    return "\n".join(lines)


def trace_events(spans: list[Span]) -> dict:
    """A distributed trace as Chrome/Perfetto trace-event JSON.

    One pid per (host, pid) process, named by an ``M`` metadata event;
    one complete ``X`` event per span, timestamps in µs relative to the
    earliest span start (the validator requires ``ts >= 0``). Spans
    that never finished get ``dur=0`` and ``args.open=true`` so a
    crashed worker's in-flight work is still visible on the timeline.
    """
    events: list[dict] = []
    processes: dict[tuple[str, int], int] = {}
    base_ns = min((s.start_ns for s in spans), default=0)
    for item in spans:
        process = (item.host, item.pid)
        if process not in processes:
            processes[process] = len(processes) + 1
            events.append({"ph": "M", "pid": processes[process], "tid": 1,
                           "name": "process_name",
                           "args": {"name": f"{item.host}-{item.pid}"}})
        args = {"trace": item.trace, "span": item.span, **item.tags}
        if item.open:
            args["open"] = True
        if item.error:
            args["error"] = item.error
        events.append({
            "ph": "X", "pid": processes[process], "tid": 1,
            "name": item.name, "cat": "ok" if item.ok else "error",
            "ts": (item.start_ns - base_ns) / 1e3,
            "dur": max(item.duration_ns, 0) / 1e3,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "spans": len(spans),
            "processes": len(processes),
            "traces": sorted({s.trace for s in spans}),
        },
    }


def export_trace(root: str | os.PathLike | None, needle: str,
                 path: str | os.PathLike) -> tuple[str, dict]:
    """Merge the shards, pick the trace ``needle`` names, write one
    Perfetto JSON file; returns ``(trace_id, payload)``."""
    import json
    trace_id = find_trace_id(root, needle)
    spans = read_trace(root, trace_id)
    payload = trace_events(spans)
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return trace_id, payload


# ----------------------------------------------------------------------
# CLI: repro trace list/show/export


def build_trace_parser():
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect and export distributed traces.")
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help=f"trace directory (default: "
                             f"${TRACE_DIR_ENV} or {DEFAULT_TRACE_DIR})")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="the traces found in the shards")
    show_cmd = commands.add_parser(
        "show", help="span tree of one trace (by sweep/dag name, tag, "
                     "or trace-id prefix)")
    show_cmd.add_argument("needle")
    export_cmd = commands.add_parser(
        "export", help="write one merged Perfetto trace-event JSON file")
    export_cmd.add_argument("needle")
    export_cmd.add_argument("--out", required=True, metavar="FILE")
    return parser


def trace_main(argv: list[str] | None = None) -> int:
    import sys
    options = build_trace_parser().parse_args(argv)
    try:
        return _trace_command(options)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _trace_command(options) -> int:
    if options.command == "list":
        summaries = list_traces(options.dir)
        if not summaries:
            print("no traces found")
            return 0
        for s in summaries:
            tags = " ".join(f"{k}={v}" for k, v in sorted(s["tags"].items()))
            note = f"  {s['open']} open" if s["open"] else ""
            print(f"{s['trace']}  {s['root']:24s} "
                  f"{s['spans']:4d} spans  "
                  f"{s['duration_ns'] / 1e6:9.1f} ms  "
                  f"{len(s['hosts'])} process(es){note}"
                  + (f"  {tags}" if tags else ""))
        return 0
    if options.command == "show":
        trace_id = find_trace_id(options.dir, options.needle)
        spans = read_trace(options.dir, trace_id)
        print(f"trace {trace_id}: {len(spans)} spans, "
              f"{len({(s.host, s.pid) for s in spans})} process(es)")
        print(render_tree(spans))
        return 0
    if options.command == "export":
        trace_id, payload = export_trace(options.dir, options.needle,
                                         options.out)
        from repro.observe.export import validate_trace_events
        problems = validate_trace_events(payload)
        events = len(payload["traceEvents"])
        print(f"trace {trace_id}: {events} events -> {options.out} "
              f"(open at https://ui.perfetto.dev)")
        if problems:
            print("validation problems: " + "; ".join(problems))
            return 1
        return 0
    raise AssertionError(f"unhandled command {options.command!r}")
