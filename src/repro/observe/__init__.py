"""Observability: probe bus, profiler, critical-path analysis, exporters.

The simulator can only answer "how many cycles" by itself; this package
answers "why". It is built around a :class:`~repro.observe.probes.ProbeBus`
— typed hook points inside :class:`~repro.sim.dataflow.DataflowSimulator`
and :class:`~repro.sim.memsys.MemorySystem` that cost one ``is None``
test when observation is off — and listeners over it:

- :class:`~repro.observe.profiler.Profiler` → per-opcode/per-node fire
  counts, busy/occupancy, LSQ and port-wait histograms, cache/TLB
  breakdowns, folded into a
  :class:`~repro.observe.profiler.ProfileReport`;
- :class:`~repro.observe.critpath.CriticalPathTracker` → dynamic
  critical-path attribution of every cycle to a node and category;
- :class:`~repro.observe.export.TraceCollector` + exporters → Chrome/
  Perfetto trace JSON, VCD waveforms, JSONL metrics;
- :class:`~repro.observe.probes.HistoryRing` → recent-activity ring
  reused by deadlock forensics;
- :class:`~repro.observe.telemetry.TelemetrySession` +
  :class:`~repro.observe.store.TelemetryStore` +
  :mod:`~repro.observe.diff` → durable, schema-versioned
  :class:`~repro.observe.telemetry.RunRecord` per compile/run in an
  append-only store under ``.repro/telemetry/``, structured run-set
  diffs, and the CI regression watchdog.

:class:`Observation` bundles the common combinations::

    obs = Observation(trace=True)
    result = program.simulate(args, probes=obs.bus)
    print(obs.report(program.graph, result).render())
    obs.export_trace(program.graph, "run.json")   # open in Perfetto
    obs.export_vcd(program.graph, "run.vcd")      # open in GTKWave

or, one level higher, ``program.simulate(args, profile=True)`` returns
the report on ``DataflowResult.profile``.
"""

from __future__ import annotations

from repro.observe.critpath import (
    CriticalPathReport,
    CriticalPathTracker,
    ObservabilityError,
    categorize,
)
from repro.observe.export import (
    TraceCollector,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    export_vcd,
    validate_trace_events,
)
from repro.observe.probes import HistoryRing, ProbeBus
from repro.observe.profiler import ProfileReport, Profiler, build_report
from repro.observe.store import TelemetryStore, TelemetryStoreError
from repro.observe.telemetry import (
    RunRecord,
    TelemetrySession,
    current_session,
    telemetry_tags,
)
from repro.observe.diff import (
    ComparisonReport,
    RunDelta,
    Thresholds,
    compare,
    diff_runs,
    load_baselines,
    make_baselines,
    save_baselines,
    watchdog,
)

__all__ = [
    "ComparisonReport", "CriticalPathReport", "CriticalPathTracker",
    "HistoryRing", "Observation", "ObservabilityError", "ProbeBus",
    "ProfileReport", "Profiler", "RunDelta", "RunRecord",
    "TelemetrySession", "TelemetryStore", "TelemetryStoreError",
    "Thresholds", "TraceCollector", "build_report", "categorize",
    "chrome_trace_events", "compare", "current_session", "diff_runs",
    "export_chrome_trace", "export_jsonl", "export_vcd",
    "load_baselines", "make_baselines", "save_baselines",
    "telemetry_tags", "validate_trace_events", "watchdog",
]


class Observation:
    """One simulation's worth of wired-up observability.

    Builds a probe bus with the requested listeners; pass ``obs.bus`` as
    the simulator's/``simulate()``'s ``probes`` argument (before the run
    starts), then ask for :meth:`report` and the exporters afterwards.
    """

    def __init__(self, profile: bool = True, critical_path: bool = True,
                 trace: bool = False, history: int = 0,
                 trace_limit: int = 1_000_000,
                 max_path_records: int = 4_000_000,
                 bus: ProbeBus | None = None):
        self.bus = bus if bus is not None else ProbeBus()
        self.profiler = self.bus.subscribe(Profiler()) if profile else None
        self.critpath = (self.bus.subscribe(
            CriticalPathTracker(max_records=max_path_records))
            if critical_path else None)
        self.collector = (self.bus.subscribe(TraceCollector(trace_limit))
                          if trace else None)
        self.history = (self.bus.subscribe(HistoryRing(history))
                        if history else None)

    def report(self, graph, result, memsys_name: str = "") -> ProfileReport:
        """The :class:`ProfileReport` for a finished run."""
        if self.profiler is None:
            raise ObservabilityError("Observation was built without a "
                                     "profiler (profile=False)")
        critical = (self.critpath.analyze(graph, result.cycles)
                    if self.critpath is not None else None)
        return build_report(self.profiler, graph, result,
                            critical_path=critical, memsys_name=memsys_name)

    def critical_path(self, graph, cycles: int) -> CriticalPathReport:
        if self.critpath is None:
            raise ObservabilityError("Observation was built without "
                                     "critical_path=True")
        return self.critpath.analyze(graph, cycles)

    def export_trace(self, graph, path) -> dict:
        """Write Chrome/Perfetto trace-event JSON; returns the payload."""
        self._need_collector()
        return export_chrome_trace(self.collector, graph, path)

    def export_vcd(self, graph, path, top: int = 64) -> int:
        self._need_collector()
        return export_vcd(self.collector, graph, path, top=top)

    def _need_collector(self) -> None:
        if self.collector is None:
            raise ObservabilityError("Observation was built without "
                                     "trace=True; no events collected")
