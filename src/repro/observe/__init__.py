"""Observability: probe bus, profiler, critical-path analysis, exporters.

The simulator can only answer "how many cycles" by itself; this package
answers "why". It is built around a :class:`~repro.observe.probes.ProbeBus`
— typed hook points inside :class:`~repro.sim.dataflow.DataflowSimulator`
and :class:`~repro.sim.memsys.MemorySystem` that cost one ``is None``
test when observation is off — and listeners over it:

- :class:`~repro.observe.profiler.Profiler` → per-opcode/per-node fire
  counts, busy/occupancy, LSQ and port-wait histograms, cache/TLB
  breakdowns, folded into a
  :class:`~repro.observe.profiler.ProfileReport`;
- :class:`~repro.observe.critpath.CriticalPathTracker` → dynamic
  critical-path attribution of every cycle to a node and category;
- :class:`~repro.observe.export.TraceCollector` + exporters → Chrome/
  Perfetto trace JSON, VCD waveforms, JSONL metrics;
- :class:`~repro.observe.probes.HistoryRing` → recent-activity ring
  reused by deadlock forensics;
- :class:`~repro.observe.telemetry.TelemetrySession` +
  :class:`~repro.observe.store.TelemetryStore` +
  :mod:`~repro.observe.diff` → durable, schema-versioned
  :class:`~repro.observe.telemetry.RunRecord` per compile/run in an
  append-only store under ``.repro/telemetry/``, structured run-set
  diffs, and the CI regression watchdog;
- :mod:`~repro.observe.tracing` → distributed spans with ambient
  context that crosses process boundaries, one journal shard per
  process, merged into a single Perfetto timeline
  (``repro trace show/export``);
- :mod:`~repro.observe.metrics` → live counters/gauges/histograms,
  snapshotted per worker and merged, served as Prometheus exposition
  text on the service's ``/v1/metrics``.

:class:`Observation` bundles the common combinations::

    obs = Observation(trace=True)
    result = program.simulate(args, probes=obs.bus)
    print(obs.report(program.graph, result).render())
    obs.export_trace(program.graph, "run.json")   # open in Perfetto
    obs.export_vcd(program.graph, "run.vcd")      # open in GTKWave

or, one level higher, ``program.simulate(args, profile=True)`` returns
the report on ``DataflowResult.profile``.
"""

from __future__ import annotations

from repro.observe.critpath import (
    CriticalPathReport,
    CriticalPathTracker,
    ObservabilityError,
    categorize,
)
from repro.observe.export import (
    TraceCollector,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    export_vcd,
    validate_trace_events,
)
from repro.observe.probes import HistoryRing, ProbeBus
from repro.observe.profiler import ProfileReport, Profiler, build_report
from repro.observe.store import TelemetryStore, TelemetryStoreError
from repro.observe.telemetry import (
    RunRecord,
    TelemetrySession,
    current_session,
    telemetry_tags,
)
from repro.observe.diff import (
    ComparisonReport,
    RunDelta,
    Thresholds,
    compare,
    diff_runs,
    load_baselines,
    make_baselines,
    save_baselines,
    watchdog,
)
from repro.observe.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metrics,
    parse_prometheus,
    render_prometheus,
)
from repro.observe.tracing import (
    Span,
    Tracer,
    adopt_context,
    current_trace_id,
    current_tracer,
    export_trace,
    propagation_context,
    read_trace,
    span,
    trace_events,
)

__all__ = [
    "ComparisonReport", "CriticalPathReport", "CriticalPathTracker",
    "HistoryRing", "MetricsRegistry", "Observation", "ObservabilityError",
    "ProbeBus", "ProfileReport", "Profiler", "RunDelta", "RunRecord",
    "Span", "TelemetrySession", "TelemetryStore", "TelemetryStoreError",
    "Thresholds", "TraceCollector", "Tracer", "adopt_context",
    "build_report", "categorize", "chrome_trace_events", "compare",
    "current_session", "current_trace_id", "current_tracer", "diff_runs",
    "disable_metrics", "enable_metrics", "export_chrome_trace",
    "export_jsonl", "export_trace", "export_vcd", "load_baselines",
    "make_baselines", "merge_snapshots", "metrics", "parse_prometheus",
    "propagation_context", "read_trace", "render_prometheus",
    "save_baselines", "span", "telemetry_tags", "trace_events",
    "validate_trace_events", "watchdog",
]


class Observation:
    """One simulation's worth of wired-up observability.

    Builds a probe bus with the requested listeners; pass ``obs.bus`` as
    the simulator's/``simulate()``'s ``probes`` argument (before the run
    starts), then ask for :meth:`report` and the exporters afterwards.
    """

    def __init__(self, profile: bool = True, critical_path: bool = True,
                 trace: bool = False, history: int = 0,
                 trace_limit: int = 1_000_000,
                 max_path_records: int = 4_000_000,
                 bus: ProbeBus | None = None):
        self.bus = bus if bus is not None else ProbeBus()
        self.profiler = self.bus.subscribe(Profiler()) if profile else None
        self.critpath = (self.bus.subscribe(
            CriticalPathTracker(max_records=max_path_records))
            if critical_path else None)
        self.collector = (self.bus.subscribe(TraceCollector(trace_limit))
                          if trace else None)
        self.history = (self.bus.subscribe(HistoryRing(history))
                        if history else None)

    def report(self, graph, result, memsys_name: str = "") -> ProfileReport:
        """The :class:`ProfileReport` for a finished run."""
        if self.profiler is None:
            raise ObservabilityError("Observation was built without a "
                                     "profiler (profile=False)")
        critical = (self.critpath.analyze(graph, result.cycles)
                    if self.critpath is not None else None)
        return build_report(self.profiler, graph, result,
                            critical_path=critical, memsys_name=memsys_name)

    def critical_path(self, graph, cycles: int) -> CriticalPathReport:
        if self.critpath is None:
            raise ObservabilityError("Observation was built without "
                                     "critical_path=True")
        return self.critpath.analyze(graph, cycles)

    def export_trace(self, graph, path) -> dict:
        """Write Chrome/Perfetto trace-event JSON; returns the payload."""
        self._need_collector()
        return export_chrome_trace(self.collector, graph, path)

    def export_vcd(self, graph, path, top: int = 64) -> int:
        self._need_collector()
        return export_vcd(self.collector, graph, path, top=top)

    def _need_collector(self) -> None:
        if self.collector is None:
            raise ObservabilityError("Observation was built without "
                                     "trace=True; no events collected")
