"""Structured deltas between telemetry records, and the regression verdict.

A :class:`~repro.observe.telemetry.RunRecord` is only as useful as the
comparison it enables: fig19 is *speedup*, the ablation is *per-pass
contribution*, CI wants *did this PR slow a kernel down*. This module
computes those comparisons from stored records:

- :func:`compare` pairs two run-sets by
  :meth:`~repro.observe.telemetry.RunRecord.comparison_key` (kernel,
  opt level, memory system, arguments) and emits one :class:`RunDelta`
  per pair — cycle delta with a noise floor, critical-path
  attribution-share shifts (compute <-> memory <-> token), cache
  hit-rate changes, per-pass IR-delta drift;
- :class:`ComparisonReport` folds the deltas into a verdict with
  configurable :class:`Thresholds` and renders the human/CI summary;
- :func:`replay_baselines` + :func:`watchdog` re-run a committed
  baseline set against the current tree and compare — the CI job that
  lets the bench trajectory police itself.

Cycle counts in this simulator are deterministic per configuration, so
the noise floor exists for metrics that are not (wall times) and for
deliberately coarse thresholds; a same-config re-run compares clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ReproError
from repro.observe.telemetry import RunRecord, SCHEMA_VERSION

#: Critical-path categories whose share shifts are reported.
ATTRIBUTION_CATEGORIES = ("compute", "memory", "token", "control")


class TelemetryDiffError(ReproError):
    """Records that cannot be compared (schema skew, empty sets, ...)."""


@dataclass(frozen=True)
class Thresholds:
    """Configurable regression gates.

    ``cycle_pct`` is the relative growth that flags a regression, but
    only once the absolute delta clears ``cycle_floor`` (the noise
    floor keeps tiny kernels from tripping percentage gates).
    ``hit_rate_drop`` guards the cache; ``attribution_shift`` and
    ``ir_nodes_drift`` only produce warnings (shape changes worth
    reading, not failing CI over).
    """

    cycle_pct: float = 0.05
    cycle_floor: int = 16
    hit_rate_drop: float = 0.02
    attribution_shift: float = 0.10
    ir_nodes_drift: int = 8

    def cycle_gate(self, baseline_cycles: int) -> float:
        return max(float(self.cycle_floor),
                   self.cycle_pct * baseline_cycles)


@dataclass
class RunDelta:
    """One baseline/current pair, fully diffed."""

    key: tuple
    baseline: RunRecord
    current: RunRecord
    cycles_before: int = 0
    cycles_after: int = 0
    regression: bool = False
    reasons: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    attribution_shifts: dict[str, float] = field(default_factory=dict)
    hit_rate_before: float | None = None
    hit_rate_after: float | None = None
    pass_drift: list[dict] = field(default_factory=list)

    @property
    def cycle_delta(self) -> int:
        return self.cycles_after - self.cycles_before

    @property
    def cycle_pct(self) -> float:
        if not self.cycles_before:
            return 0.0
        return self.cycle_delta / self.cycles_before

    @property
    def name(self) -> str:
        kind, kernel, level, memsys, variant, _args = self.key
        bits = [str(part) for part in (kernel, level, memsys, variant)
                if part]
        return "/".join(bits) or kind

    def render(self) -> str:
        arrow = ("REGRESSION" if self.regression
                 else "improved" if self.cycle_delta < 0
                 else "ok")
        if self.key[0] == "compile":
            drifted = sum(1 for drift in self.pass_drift)
            line = (f"{self.name} (compile): "
                    f"{drifted or 'no'} pass IR-delta drift(s) [{arrow}]")
        else:
            line = (f"{self.name}: {self.cycles_before} -> "
                    f"{self.cycles_after} cycles "
                    f"({self.cycle_pct:+.1%}) [{arrow}]")
        for reason in self.reasons:
            line += f"\n    ! {reason}"
        for warning in self.warnings:
            line += f"\n    ~ {warning}"
        return line

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "baseline_id": self.baseline.run_id,
            "current_id": self.current.run_id,
            "cycles_before": self.cycles_before,
            "cycles_after": self.cycles_after,
            "cycle_pct": round(self.cycle_pct, 6),
            "regression": self.regression,
            "reasons": list(self.reasons),
            "warnings": list(self.warnings),
            "attribution_shifts": {k: round(v, 6) for k, v
                                   in self.attribution_shifts.items()},
            "hit_rate_before": self.hit_rate_before,
            "hit_rate_after": self.hit_rate_after,
            "pass_drift": list(self.pass_drift),
        }


@dataclass
class ComparisonReport:
    """Every delta between two run-sets, plus the verdict."""

    deltas: list[RunDelta] = field(default_factory=list)
    unmatched_baseline: list[RunRecord] = field(default_factory=list)
    unmatched_current: list[RunRecord] = field(default_factory=list)
    thresholds: Thresholds = field(default_factory=Thresholds)

    @property
    def regressions(self) -> list[RunDelta]:
        return [delta for delta in self.deltas if delta.regression]

    @property
    def improvements(self) -> list[RunDelta]:
        return [delta for delta in self.deltas
                if not delta.regression and delta.cycle_delta < 0]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        if not self.deltas and not self.unmatched_baseline \
                and not self.unmatched_current:
            return "nothing to compare (no matching runs)"
        lines = [delta.render() for delta in self.deltas]
        for record in self.unmatched_baseline:
            lines.append(f"baseline-only: {record.describe()}")
        for record in self.unmatched_current:
            lines.append(f"current-only: {record.describe()}")
        verdict = ("no regression"
                   if self.ok else
                   f"{len(self.regressions)} regression(s) "
                   f"of {len(self.deltas)} compared run(s)")
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "compared": len(self.deltas),
            "regressions": len(self.regressions),
            "deltas": [delta.to_dict() for delta in self.deltas],
            "unmatched_baseline": [record.describe() for record
                                   in self.unmatched_baseline],
            "unmatched_current": [record.describe() for record
                                  in self.unmatched_current],
        }


# ----------------------------------------------------------------------
# Pairwise and set-wise comparison


def diff_runs(baseline: RunRecord, current: RunRecord,
              thresholds: Thresholds | None = None) -> RunDelta:
    """The structured delta of two comparable run records."""
    thresholds = thresholds or Thresholds()
    if baseline.schema != current.schema:
        raise TelemetryDiffError(
            f"cannot compare schema {baseline.schema} against "
            f"{current.schema} (this build speaks {SCHEMA_VERSION})")
    delta = RunDelta(key=current.comparison_key(), baseline=baseline,
                     current=current,
                     cycles_before=baseline.cycles or 0,
                     cycles_after=current.cycles or 0)

    # Cycles: the verdict-driving metric, gated by the noise floor.
    growth = delta.cycle_delta
    if delta.cycles_before and \
            growth > thresholds.cycle_gate(delta.cycles_before):
        delta.regression = True
        delta.reasons.append(
            f"cycles grew {growth} ({delta.cycle_pct:+.1%}), over the "
            f"{thresholds.cycle_pct:.0%}/{thresholds.cycle_floor}-cycle "
            f"gate")

    # Cache behaviour.
    delta.hit_rate_before = baseline.cache_hit_rate()
    delta.hit_rate_after = current.cache_hit_rate()
    if delta.hit_rate_before is not None \
            and delta.hit_rate_after is not None:
        drop = delta.hit_rate_before - delta.hit_rate_after
        if drop > thresholds.hit_rate_drop:
            delta.regression = True
            delta.reasons.append(
                f"cache hit rate fell {delta.hit_rate_before:.3f} -> "
                f"{delta.hit_rate_after:.3f}")

    # Critical-path attribution shifts (compute <-> memory <-> token).
    before_shares = baseline.attribution_shares()
    after_shares = current.attribution_shares()
    if before_shares and after_shares:
        for category in ATTRIBUTION_CATEGORIES:
            shift = (after_shares.get(category, 0.0)
                     - before_shares.get(category, 0.0))
            if abs(shift) > 1e-9:
                delta.attribution_shifts[category] = shift
            if abs(shift) > thresholds.attribution_shift:
                delta.warnings.append(
                    f"critical-path {category} share moved "
                    f"{before_shares.get(category, 0.0):.1%} -> "
                    f"{after_shares.get(category, 0.0):.1%}")

    # Per-pass IR-delta drift (compile records on either side).
    delta.pass_drift = _pass_drift(baseline, current, thresholds)
    for drift in delta.pass_drift:
        if drift["exceeds"]:
            delta.warnings.append(
                f"pass {drift['name']} IR delta drifted "
                f"{drift['d_nodes_before']} -> {drift['d_nodes_after']} "
                f"nodes")
    return delta


def _pass_drift(baseline: RunRecord, current: RunRecord,
                thresholds: Thresholds) -> list[dict]:
    before = {(p["name"], index): p for index, p in
              enumerate((baseline.compilation or {}).get("passes") or [])}
    after = {(p["name"], index): p for index, p in
             enumerate((current.compilation or {}).get("passes") or [])}
    drift = []
    for key in before.keys() & after.keys():
        b, a = before[key], after[key]
        if (b["d_nodes"], b["d_loads"], b["d_stores"], b["d_tokens"]) == \
                (a["d_nodes"], a["d_loads"], a["d_stores"], a["d_tokens"]):
            continue
        drift.append({
            "name": key[0],
            "d_nodes_before": b["d_nodes"],
            "d_nodes_after": a["d_nodes"],
            "d_loads_before": b["d_loads"],
            "d_loads_after": a["d_loads"],
            "exceeds": abs(a["d_nodes"] - b["d_nodes"])
            > thresholds.ir_nodes_drift,
        })
    drift.sort(key=lambda item: item["name"])
    return drift


def compare(baseline_records, current_records,
            thresholds: Thresholds | None = None) -> ComparisonReport:
    """Pair two run-sets by comparison key and diff every pair.

    When several records on one side share a key (a session that ran the
    same cell repeatedly), the newest wins. Compile-only records pair
    with compile records, runs with runs.
    """
    thresholds = thresholds or Thresholds()
    baseline_by_key = _latest_by_key(baseline_records)
    current_by_key = _latest_by_key(current_records)
    report = ComparisonReport(thresholds=thresholds)
    for key in sorted(baseline_by_key.keys() & current_by_key.keys(),
                      key=repr):
        report.deltas.append(diff_runs(baseline_by_key[key],
                                       current_by_key[key], thresholds))
    for key in sorted(baseline_by_key.keys() - current_by_key.keys(),
                      key=repr):
        report.unmatched_baseline.append(baseline_by_key[key])
    for key in sorted(current_by_key.keys() - baseline_by_key.keys(),
                      key=repr):
        report.unmatched_current.append(current_by_key[key])
    return report


def _latest_by_key(records) -> dict[tuple, RunRecord]:
    by_key: dict[tuple, RunRecord] = {}
    for record in records:
        key = record.comparison_key()
        held = by_key.get(key)
        if held is None or record.created_at >= held.created_at:
            by_key[key] = record
    return by_key


# ----------------------------------------------------------------------
# Baseline files and the watchdog


def load_baselines(path: str | Path) -> list[RunRecord]:
    """Baseline records from a JSON file or a directory of them.

    Each file holds either one record payload or a list of payloads —
    the format :func:`save_baselines` writes and CI commits under
    ``benchmarks/results/baselines/``.
    """
    path = Path(path)
    files = sorted(path.glob("*.json")) if path.is_dir() else [path]
    if not files:
        raise TelemetryDiffError(f"no baseline files under {path}")
    records = []
    for file in files:
        payload = json.loads(file.read_text())
        items = payload if isinstance(payload, list) else [payload]
        records.extend(RunRecord.from_dict(item) for item in items)
    return records


def save_baselines(records, directory: str | Path) -> list[Path]:
    """Write one ``<kernel>-<level>-<memsys>.json`` per record."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for record in records:
        name = "-".join(str(part) for part in
                        (record.kernel, record.opt_level, record.memsys)
                        if part)
        path = directory / f"{name or 'baseline'}.json"
        path.write_text(json.dumps(record.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        written.append(path)
    return written


def _memsys_by_name(name: str | None):
    from repro.sim.memsys import (
        PERFECT_MEMORY, REALISTIC_MEMORY, REALISTIC_1PORT,
        REALISTIC_2PORT, REALISTIC_4PORT,
    )
    registry = {config.name: config for config in (
        PERFECT_MEMORY, REALISTIC_MEMORY, REALISTIC_1PORT,
        REALISTIC_2PORT, REALISTIC_4PORT)}
    if name not in registry:
        raise TelemetryDiffError(
            f"baseline names unknown memory system {name!r}; "
            f"known: {sorted(registry)}")
    return registry[name]


def replay_baselines(records, *, wall_limit: float | None = None,
                     session=None) -> list[RunRecord]:
    """Re-run each baseline's (kernel, level, memsys) cell on the
    current tree and return fresh records.

    Baselines must name a kernel from the registry (the ``kernel`` tag);
    compile-only records and unknown kernels are skipped. When a
    ``session`` is given the fresh records are also persisted there.
    """
    from repro.harness.cache import compiled
    from repro.observe.telemetry import build_run_record
    from repro.programs import get_kernel
    from repro.sim.memsys import MemorySystem

    fresh = []
    for record in records:
        if record.kind != "run" or not record.tags.get("kernel"):
            continue
        name = record.tags["kernel"]
        try:
            kernel = get_kernel(name)
        except KeyError:
            continue
        entry = compiled(name, record.opt_level or "full")
        config = _memsys_by_name(record.memsys)
        result = entry.program.simulate(
            list(kernel.args), memsys=MemorySystem(config),
            wall_limit=wall_limit, profile=bool(record.critical_path),
            telemetry=False)
        kernel.check(result.return_value)
        current = build_run_record(
            entry.program, result, engine=None, memsys_name=config.name,
            args=list(kernel.args), tags={"kernel": name})
        if session is not None:
            session.record(current)
        fresh.append(current)
    return fresh


def make_baselines(kernels, levels=("none", "full"),
                   memory_systems=None, *, profile: bool = True) -> list[RunRecord]:
    """Fresh baseline records for ``kernels`` x ``levels`` x memsys."""
    from repro.harness.cache import compiled
    from repro.observe.telemetry import build_run_record
    from repro.programs import get_kernel
    from repro.sim.memsys import (
        MemorySystem, PERFECT_MEMORY, REALISTIC_2PORT,
    )
    if memory_systems is None:
        memory_systems = (PERFECT_MEMORY, REALISTIC_2PORT)
    records = []
    for name in kernels:
        kernel = get_kernel(name)
        for level in levels:
            entry = compiled(name, level)
            for config in memory_systems:
                result = entry.program.simulate(
                    list(kernel.args), memsys=MemorySystem(config),
                    profile=profile, telemetry=False)
                kernel.check(result.return_value)
                records.append(build_run_record(
                    entry.program, result, memsys_name=config.name,
                    args=list(kernel.args), tags={"kernel": name}))
    return records


def watchdog(baseline_path: str | Path,
             thresholds: Thresholds | None = None,
             wall_limit: float | None = None,
             session=None) -> ComparisonReport:
    """Replay a committed baseline set and compare: the CI regression
    gate. ``report.ok`` is the pass/fail bit."""
    baselines = load_baselines(baseline_path)
    fresh = replay_baselines(baselines, wall_limit=wall_limit,
                             session=session)
    return compare(baselines, fresh, thresholds)


def perturbed(config, factor: float = 4.0):
    """A timing-degraded copy of a memory config **with the same name**
    — the test fixture for an injected regression (the comparison key
    must still match the baseline's)."""
    return replace(config,
                   perfect_latency=max(1, int(config.perfect_latency
                                              * factor)),
                   l1_hit=int(config.l1_hit * factor),
                   l2_hit=int(config.l2_hit * factor),
                   mem_latency=int(config.mem_latency * factor),
                   tlb_miss=int(config.tlb_miss * factor))
