"""Trace exporters: Chrome/Perfetto trace-event JSON, VCD, JSONL metrics.

:class:`TraceCollector` is a probe-bus listener that buffers raw events
(operator firings with their service intervals, memory accesses with
their hierarchy level, LSQ occupancy samples) with a hard cap so a
runaway simulation cannot exhaust memory. The exporters are pure
functions over a collector (plus the graph for labels):

- :func:`export_chrome_trace` writes trace-event JSON that loads in
  ``chrome://tracing`` and https://ui.perfetto.dev — one track per
  operator (complete "X" events, 1 µs = 1 cycle), a memory track, and an
  LSQ-occupancy counter series;
- :func:`export_vcd` writes a Value Change Dump viewable in GTKWave: an
  8-bit per-cycle firing-count signal per (busiest) operator and a
  16-bit LSQ-depth signal, timescale 1 ns = 1 cycle;
- :func:`export_jsonl` streams a :class:`ProfileReport` as one JSON
  object per line (summary, then per-node, per-opcode and critical-path
  rows) for downstream metric pipelines.

:func:`validate_trace_events` checks a payload against the trace-event
format contract (the subset this module emits) and is used by tests and
the CI profile-smoke job.
"""

from __future__ import annotations

import json

from repro.pegasus import nodes as N
from repro.observe.critpath import categorize
from repro.observe.profiler import opcode


class TraceCollector:
    """Buffers displayable events from one simulation, with a cap."""

    def __init__(self, limit: int = 1_000_000):
        self.limit = limit
        self.fires: list[tuple[int, int, int]] = []   # (node id, start, done)
        self.mem: list[tuple[int, int, int, str, bool]] = []
        self.lsq: list[tuple[int, int]] = []           # (cycle, depth)
        self.dropped = 0
        self._open: dict[int, int] = {}

    def _full(self) -> bool:
        if (len(self.fires) + len(self.mem) + len(self.lsq)) >= self.limit:
            self.dropped += 1
            return True
        return False

    def on_fire(self, node: N.Node, time: int) -> None:
        self._open[node.id] = time

    def on_emit(self, node: N.Node, outputs, at: int) -> None:
        started = self._open.pop(node.id, at)
        if not self._full():
            self.fires.append((node.id, started, at))

    def on_mem_access(self, now: int, start: int, done: int, addr: int,
                      width: int, is_write: bool, level: str,
                      tlb_miss: bool) -> None:
        if not self._full():
            self.mem.append((now, start, done, level, is_write))

    def on_lsq(self, now: int, depth: int, port_wait: int) -> None:
        if not self._full():
            self.lsq.append((now, depth))


# ----------------------------------------------------------------------
# Chrome / Perfetto trace-event JSON


def chrome_trace_events(collector: TraceCollector, graph) -> dict:
    """The trace-event payload as a dict (see `Trace Event Format`_).

    .. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
    """
    events: list[dict] = []
    named: set[int] = set()
    for node_id, start, done in collector.fires:
        node = graph.nodes.get(node_id)
        label = f"{node.label()}#{node_id}" if node else f"#{node_id}"
        category = categorize(node) if node else "control"
        if node_id not in named:
            named.add(node_id)
            events.append({
                "ph": "M", "pid": 1, "tid": node_id,
                "name": "thread_name", "args": {"name": label},
            })
        events.append({
            "ph": "X", "pid": 1, "tid": node_id, "name": label,
            "cat": category, "ts": start, "dur": max(done - start, 0),
            "args": {"cycle": start},
        })
    for now, start, done, level, is_write in collector.mem:
        events.append({
            "ph": "X", "pid": 2, "tid": 1,
            "name": f"{'store' if is_write else 'load'}@{level}",
            "cat": "memory", "ts": now, "dur": max(done - now, 0),
            "args": {"level": level, "queued": start - now},
        })
    for now, depth in collector.lsq:
        events.append({
            "ph": "C", "pid": 2, "name": "lsq_occupancy",
            "ts": now, "args": {"depth": depth},
        })
    if collector.mem or collector.lsq:
        events.append({"ph": "M", "pid": 2, "tid": 1,
                       "name": "process_name",
                       "args": {"name": "memory system"}})
    events.append({"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                   "args": {"name": f"circuit: {graph.name}"}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "graph": graph.name,
            "dropped_events": collector.dropped,
        },
    }


def export_chrome_trace(collector: TraceCollector, graph, path) -> dict:
    """Write the Perfetto-loadable JSON to ``path``; returns the payload."""
    payload = chrome_trace_events(collector, graph)
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return payload


#: Required keys per event phase, for :func:`validate_trace_events`.
_PHASE_REQUIRED = {
    "X": ("pid", "tid", "name", "ts", "dur"),
    "M": ("pid", "name", "args"),
    "C": ("pid", "name", "ts", "args"),
}


def validate_trace_events(payload) -> list[str]:
    """Schema check of a trace-event payload; returns problems ([] = ok)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                problems.append(f"event {index} ({phase}): missing {key!r}")
        if "ts" in event and (not isinstance(event["ts"], (int, float))
                              or event["ts"] < 0):
            problems.append(f"event {index}: bad ts {event['ts']!r}")
        if phase == "X" and (not isinstance(event.get("dur"), (int, float))
                             or event["dur"] < 0):
            problems.append(f"event {index}: bad dur {event.get('dur')!r}")
        if len(problems) > 20:
            problems.append("... further problems suppressed")
            break
    return problems


# ----------------------------------------------------------------------
# VCD


def _vcd_identifier(index: int) -> str:
    # Printable VCD id characters, excluding whitespace.
    alphabet = "".join(chr(c) for c in range(33, 127))
    if index == 0:
        return alphabet[0]
    out = []
    while index:
        index, digit = divmod(index, len(alphabet))
        out.append(alphabet[digit])
    return "".join(out)


def export_vcd(collector: TraceCollector, graph, path, top: int = 64) -> int:
    """Write per-cycle activity waveforms to ``path``; returns the number
    of signals emitted.

    Each of the ``top`` busiest operators becomes an 8-bit
    firings-this-cycle signal; the LSQ depth becomes a 16-bit signal.
    Opens directly in GTKWave (`1 ns` = one simulated cycle).
    """
    per_node: dict[int, dict[int, int]] = {}
    for node_id, start, _done in collector.fires:
        cycle_counts = per_node.setdefault(node_id, {})
        cycle_counts[start] = cycle_counts.get(start, 0) + 1
    busiest = sorted(per_node.items(),
                     key=lambda item: (-sum(item[1].values()), item[0]))[:top]
    lsq_by_cycle: dict[int, int] = {}
    for now, depth in collector.lsq:
        lsq_by_cycle[now] = max(depth, lsq_by_cycle.get(now, 0))

    signals: list[tuple[str, str, int, dict[int, int]]] = []
    for serial, (node_id, cycle_counts) in enumerate(busiest):
        node = graph.nodes.get(node_id)
        label = f"{node.label()}#{node_id}" if node else f"node{node_id}"
        safe = "".join(ch if ch.isalnum() or ch in "_#" else "_"
                       for ch in label)
        signals.append((_vcd_identifier(serial), safe, 8, cycle_counts))
    if lsq_by_cycle:
        signals.append((_vcd_identifier(len(signals)), "lsq_depth", 16,
                        lsq_by_cycle))

    changes: dict[int, list[tuple[str, int, int]]] = {}
    for ident, _name, width, by_cycle in signals:
        previous = 0
        for cycle in sorted(by_cycle):
            value = by_cycle[cycle]
            if value != previous:
                changes.setdefault(cycle, []).append((ident, value, width))
                previous = value
            # Activity-count signals drop back to zero the next cycle so
            # each firing renders as a pulse, not a level.
            if by_cycle is not lsq_by_cycle and value != 0 \
                    and (cycle + 1) not in by_cycle:
                changes.setdefault(cycle + 1, []).append((ident, 0, width))
                previous = 0

    with open(path, "w") as handle:
        handle.write("$date repro observability export $end\n")
        handle.write(f"$comment graph {graph.name} $end\n")
        handle.write("$timescale 1ns $end\n")
        handle.write(f"$scope module {_safe_module(graph.name)} $end\n")
        for ident, name, width, _by_cycle in signals:
            handle.write(f"$var wire {width} {ident} {name} $end\n")
        handle.write("$upscope $end\n$enddefinitions $end\n")
        handle.write("$dumpvars\n")
        for ident, _name, width, _by_cycle in signals:
            handle.write(f"b0 {ident}\n")
        handle.write("$end\n")
        for cycle in sorted(changes):
            handle.write(f"#{cycle}\n")
            for ident, value, width in changes[cycle]:
                handle.write(f"b{value:b} {ident}\n")
    return len(signals)


def _safe_module(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return safe or "circuit"


# ----------------------------------------------------------------------
# JSONL metrics


def export_jsonl(report, path) -> int:
    """Stream a :class:`ProfileReport` as JSON lines; returns line count."""
    lines = [{
        "kind": "summary",
        "graph": report.graph_name,
        "cycles": report.cycles,
        "fired": report.fired,
        "memsys": report.memsys_name,
        "memory": {
            "levels": dict(report.mem_levels),
            "reads": report.mem_reads,
            "writes": report.mem_writes,
            "tlb_misses": report.mem_tlb_misses,
        },
    }]
    for name, count in sorted(report.opcode_fires.items()):
        lines.append({"kind": "opcode", "opcode": name, "fires": count})
    for node in report.nodes:
        lines.append({
            "kind": "node", "id": node.node_id, "label": node.label,
            "opcode": node.opcode, "fires": node.fires,
            "busy_cycles": node.busy_cycles,
            "occupancy": round(node.occupancy, 6),
            "max_queue_depth": node.max_queue_depth,
        })
    if report.critical_path is not None:
        critical = report.critical_path
        lines.append({
            "kind": "critical_path",
            "cycles": critical.cycles,
            "by_category": dict(critical.by_category),
            "chain_length": critical.chain_length,
        })
    with open(path, "w") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")
    return len(lines)
