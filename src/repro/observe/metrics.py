"""Live metrics: process-local counters/gauges/histograms, mergeable
across workers, rendered as Prometheus exposition text.

Telemetry RunRecords answer questions *after* a run set finishes; the
metrics registry answers "what is the system doing right now" — queue
depths, cache hit/miss and dedup counts, batch sizes, lease
revocations, retry totals, job-latency histograms — with the same
ambient discipline as tracing and telemetry:

- instrumented code calls :func:`metrics` and guards on ``None``; when
  no registry is enabled the whole subsystem costs one function call
  and one ``is None`` test per site;
- :func:`enable_metrics` pushes a :class:`MetricsRegistry` onto the
  ambient stack (the compile service does this for its lifetime; the
  remote sweep worker does it at startup);
- a registry :meth:`~MetricsRegistry.snapshot` is a plain JSON dict
  tagged with identity (host, pid, worker, ...); snapshots from many
  workers merge with :func:`merge_snapshots` (counters and histograms
  sum, gauges keep the newest) — the cross-process story mirrors the
  journal-shard merge, but for rates instead of results;
- :func:`render_prometheus` emits text/plain exposition format
  (version 0.0.4) for the service's ``GET /v1/metrics`` endpoint, and
  :func:`parse_prometheus` is the minimal reader the tests and CI
  scrapes use to assert on it.

Metric identity is ``(name, sorted(labels))``; histograms use fixed
cumulative buckets (seconds, exponential) so worker snapshots merge
bucket-by-bucket without resampling.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
from pathlib import Path

#: The exposition content type ``GET /v1/metrics`` serves.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram bucket upper bounds, in seconds.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Worker metrics snapshots land beside journal shards as
#: ``metrics-<worker>.json``.
SNAPSHOT_GLOB = "metrics-*.json"

SCHEMA_VERSION = 1

# Innermost-active-registry stack (per process).
_ACTIVE: list["MetricsRegistry"] = []


def metrics() -> "MetricsRegistry | None":
    """The ambient registry, or None (metrics inert) — the one-call
    guard every instrumented site uses."""
    return _ACTIVE[-1] if _ACTIVE else None


def enable_metrics(registry: "MetricsRegistry | None" = None
                   ) -> "MetricsRegistry":
    """Push (and return) an ambient registry; nests like sessions."""
    registry = registry if registry is not None else MetricsRegistry()
    _ACTIVE.append(registry)
    return registry


def disable_metrics(registry: "MetricsRegistry | None" = None) -> None:
    """Pop the innermost registry (or the given one, wherever it is)."""
    if registry is None:
        if _ACTIVE:
            _ACTIVE.pop()
    elif registry in _ACTIVE:
        _ACTIVE.remove(registry)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, in-flight jobs)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Thread-safe name+labels -> instrument map for one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def _get(self, kind, name: str, labels: dict, **kwargs):
        key = self._key(name, labels)
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = kind(**kwargs)
                self._metrics[key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------

    def snapshot(self, tags: dict | None = None) -> dict:
        """The registry as one JSON-safe dict, identity-tagged."""
        rows = []
        with self._lock:
            items = list(self._metrics.items())
        for (name, labels), instrument in sorted(items):
            row = {"name": name, "labels": dict(labels)}
            if isinstance(instrument, Counter):
                row.update(type="counter", value=instrument.value)
            elif isinstance(instrument, Gauge):
                row.update(type="gauge", value=instrument.value)
            else:
                row.update(type="histogram",
                           buckets=list(instrument.buckets),
                           counts=list(instrument.counts),
                           sum=instrument.sum, count=instrument.count)
            rows.append(row)
        return {"schema": SCHEMA_VERSION, "ts": round(time.time(), 6),
                "host": socket.gethostname(), "pid": os.getpid(),
                "tags": dict(tags or {}), "metrics": rows}


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold worker snapshots into one: counters and histograms sum,
    gauges keep the value from the newest snapshot carrying them."""
    merged: dict[tuple, dict] = {}
    newest: dict[tuple, float] = {}
    for snap in snapshots:
        ts = snap.get("ts", 0)
        for row in snap.get("metrics", []):
            key = (row["name"], tuple(sorted(row.get("labels",
                                                     {}).items())))
            current = merged.get(key)
            if current is None:
                merged[key] = {**row, "labels": dict(row.get("labels", {}))}
                if row["type"] == "histogram":
                    merged[key]["counts"] = list(row["counts"])
                newest[key] = ts
                continue
            if row["type"] == "counter":
                current["value"] += row["value"]
            elif row["type"] == "gauge":
                if ts >= newest[key]:
                    current["value"] = row["value"]
            elif row["type"] == "histogram" \
                    and list(row.get("buckets", [])) \
                    == list(current.get("buckets", [])):
                current["counts"] = [a + b for a, b in
                                     zip(current["counts"], row["counts"])]
                current["sum"] += row["sum"]
                current["count"] += row["count"]
            newest[key] = max(newest[key], ts)
    return {"schema": SCHEMA_VERSION, "ts": round(time.time(), 6),
            "tags": {"merged_from": len(snapshots)},
            "metrics": [merged[key] for key in sorted(merged)]}


# ----------------------------------------------------------------------
# Prometheus exposition


def _prom_name(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "_:" else "_"
                   for ch in name)


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = {**(extra or {}), **labels}
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """A snapshot (or merged snapshot) as exposition-format text."""
    lines: list[str] = []
    typed: set[str] = set()
    for row in snapshot.get("metrics", []):
        name = _prom_name(row["name"])
        labels = row.get("labels", {})
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {row['type']}")
        if row["type"] in ("counter", "gauge"):
            lines.append(f"{name}{_prom_labels(labels)} "
                         f"{_prom_value(row['value'])}")
            continue
        cumulative = 0
        for bound, count in zip(list(row["buckets"]) + [math.inf],
                                row["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels(labels, {'le': _prom_value(bound)})} "
                f"{cumulative}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_prom_value(row['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {row['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Minimal exposition reader for tests and CI scrapes:
    ``name{labels}`` -> value, comments skipped, labels kept verbatim
    (already sorted by the renderer)."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        values[series] = float(value) if value != "+Inf" else math.inf
    return values


def sum_series(parsed: dict[str, float], name: str) -> float:
    """Sum a parsed metric across label sets (``name`` and
    ``name{...}`` series; ``_bucket``/``_sum``/``_count`` excluded
    unless named explicitly)."""
    total = 0.0
    for series, value in parsed.items():
        base = series.split("{", 1)[0]
        if base == name:
            total += value
    return total


# ----------------------------------------------------------------------
# Worker snapshot files (beside journal shards)


def snapshot_path(directory: str | os.PathLike, worker_id: str) -> Path:
    safe = "".join(ch if ch.isalnum() or ch in "-._" else "-"
                   for ch in worker_id)
    return Path(directory) / f"metrics-{safe}.json"


def write_snapshot(directory: str | os.PathLike, worker_id: str,
                   tags: dict | None = None) -> Path | None:
    """Atomically dump the ambient registry's snapshot; None when
    metrics are inert (the guard lives here so callers stay one line)."""
    registry = metrics()
    if registry is None:
        return None
    path = snapshot_path(directory, worker_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(registry.snapshot(tags)) + "\n")
    os.replace(tmp, path)
    return path


def read_snapshots(directory: str | os.PathLike) -> dict:
    """Merge every ``metrics-*.json`` under ``directory`` (unreadable
    or torn files skipped — a snapshot is a cache, not a journal)."""
    directory = Path(directory)
    snapshots = []
    if directory.is_dir():
        for path in sorted(directory.glob(SNAPSHOT_GLOB)):
            try:
                snapshots.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue
    return merge_snapshots(snapshots)
