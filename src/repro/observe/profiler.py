"""Cycle-accurate profiling of a dataflow execution.

:class:`Profiler` is a probe-bus listener that aggregates, online and in
O(1) per event:

- per-opcode and per-node firing counts;
- per-node busy cycles (sum of firing service times — for a pipelined
  operator this is *throughput-style* occupancy and can exceed the
  wall-cycle count);
- LSQ occupancy and port-wait histograms;
- per-level cache/TLB hit/miss breakdowns (cross-checked against the
  memory system's own :class:`~repro.sim.memsys.MemoryStats`);
- per-node peak input-queue depth (how much buffering the circuit would
  actually need).

:func:`build_report` folds the aggregates plus an optional critical-path
analysis into a :class:`ProfileReport` — the structured answer to "where
did the cycles go" that the harnesses, CLI and exporters all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pegasus import nodes as N

MEM_LEVELS = ("perfect", "l1", "l2", "mem")


def opcode(node: N.Node) -> str:
    """The profiling bucket for one operator (its dynamic opcode)."""
    if isinstance(node, N.BinOpNode):
        return node.op
    if isinstance(node, N.UnOpNode):
        return node.op
    if isinstance(node, N.CastNode):
        return "cast"
    if isinstance(node, N.LoadNode):
        return "load"
    if isinstance(node, N.StoreNode):
        return "store"
    if isinstance(node, N.MuxNode):
        return "mux"
    if isinstance(node, N.MergeNode):
        return "merge"
    if isinstance(node, N.EtaNode):
        return "eta"
    if isinstance(node, N.CombineNode):
        return "combine"
    if isinstance(node, N.TokenGenNode):
        return "tk"
    if isinstance(node, N.ControlStreamNode):
        return "ctrlstream"
    if isinstance(node, N.ReturnNode):
        return "return"
    if isinstance(node, N.InitialTokenNode):
        return "token0"
    return type(node).__name__.replace("Node", "").lower()


class Profiler:
    """Online aggregation over the probe stream."""

    def __init__(self):
        self.fires: dict[int, int] = {}
        self.busy: dict[int, int] = {}
        self.lsq_depth_hist: dict[int, int] = {}
        self.port_wait_hist: dict[int, int] = {}
        self.mem_level_counts: dict[str, int] = {}
        self.mem_reads = 0
        self.mem_writes = 0
        self.mem_tlb_misses = 0
        self.mem_latency_total = 0
        self.queue_depth: dict[tuple[int, int], int] = {}
        self.max_queue_depth: dict[int, int] = {}
        self._last_fire: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Probe handlers

    def on_fire(self, node: N.Node, time: int) -> None:
        self.fires[node.id] = self.fires.get(node.id, 0) + 1
        self._last_fire[node.id] = time

    def on_emit(self, node: N.Node, outputs, at: int) -> None:
        started = self._last_fire.get(node.id, at)
        self.busy[node.id] = self.busy.get(node.id, 0) + (at - started)

    def on_enqueue(self, producer: N.Node, consumer: N.Node, slot: int,
                   time: int) -> None:
        key = (consumer.id, slot)
        depth = self.queue_depth.get(key, 0) + 1
        self.queue_depth[key] = depth
        if depth > self.max_queue_depth.get(consumer.id, 0):
            self.max_queue_depth[consumer.id] = depth

    def on_dequeue(self, node: N.Node, slot: int, time: int) -> None:
        key = (node.id, slot)
        depth = self.queue_depth.get(key, 0)
        if depth > 0:
            self.queue_depth[key] = depth - 1

    def on_mem_access(self, now: int, start: int, done: int, addr: int,
                      width: int, is_write: bool, level: str,
                      tlb_miss: bool) -> None:
        self.mem_level_counts[level] = self.mem_level_counts.get(level, 0) + 1
        if is_write:
            self.mem_writes += 1
        else:
            self.mem_reads += 1
        if tlb_miss:
            self.mem_tlb_misses += 1
        self.mem_latency_total += done - now

    def on_lsq(self, now: int, depth: int, port_wait: int) -> None:
        self.lsq_depth_hist[depth] = self.lsq_depth_hist.get(depth, 0) + 1
        self.port_wait_hist[port_wait] = \
            self.port_wait_hist.get(port_wait, 0) + 1


@dataclass
class NodeProfile:
    node_id: int
    label: str
    opcode: str
    fires: int
    busy_cycles: int
    occupancy: float          # busy / simulated cycles; >1 when pipelined
    max_queue_depth: int


@dataclass
class ProfileReport:
    """Structured profile of one simulation."""

    graph_name: str
    cycles: int
    fired: int
    memsys_name: str
    opcode_fires: dict[str, int] = field(default_factory=dict)
    nodes: list[NodeProfile] = field(default_factory=list)
    lsq_depth_hist: dict[int, int] = field(default_factory=dict)
    port_wait_hist: dict[int, int] = field(default_factory=dict)
    mem_levels: dict[str, int] = field(default_factory=dict)
    mem_reads: int = 0
    mem_writes: int = 0
    mem_tlb_misses: int = 0
    mem_avg_latency: float = 0.0
    memory_stats: dict[str, int] = field(default_factory=dict)
    critical_path: object = None    # CriticalPathReport | None

    def top_nodes(self, count: int = 10) -> list[NodeProfile]:
        ranked = sorted(self.nodes,
                        key=lambda n: (-n.busy_cycles, -n.fires, n.node_id))
        return ranked[:count]

    def render(self, top: int = 10) -> str:
        lines = [f"profile of '{self.graph_name}' "
                 f"({self.memsys_name} memory): "
                 f"{self.cycles} cycles, {self.fired} firings"]
        ranked_ops = sorted(self.opcode_fires.items(),
                            key=lambda item: (-item[1], item[0]))
        lines.append("firings by opcode: " + ", ".join(
            f"{name}={count}" for name, count in ranked_ops[:12]))
        lines.append("busiest operators (busy cycles / occupancy / fires "
                     "/ peak queue):")
        for node in self.top_nodes(top):
            lines.append(f"  {node.label:>20s} {node.busy_cycles:8d}  "
                         f"{node.occupancy:6.2f}  {node.fires:8d}  "
                         f"{node.max_queue_depth:4d}")
        total_mem = sum(self.mem_levels.values())
        if total_mem:
            breakdown = ", ".join(
                f"{level}={self.mem_levels.get(level, 0)}"
                for level in MEM_LEVELS if self.mem_levels.get(level))
            lines.append(f"memory: {total_mem} accesses "
                         f"({self.mem_reads} reads, {self.mem_writes} "
                         f"writes) — {breakdown}; "
                         f"{self.mem_tlb_misses} TLB misses; "
                         f"avg latency {self.mem_avg_latency:.1f} cycles")
        if self.lsq_depth_hist:
            peak = max(self.lsq_depth_hist)
            waits = sum(wait * count
                        for wait, count in self.port_wait_hist.items())
            lines.append(f"LSQ: peak occupancy {peak}, "
                         f"{waits} port-wait cycles total")
        if self.critical_path is not None:
            lines.append(self.critical_path.render(top))
        return "\n".join(lines)

    def to_json(self) -> dict:
        payload = {
            "graph": self.graph_name,
            "cycles": self.cycles,
            "fired": self.fired,
            "memsys": self.memsys_name,
            "opcode_fires": dict(self.opcode_fires),
            "nodes": [
                {"id": n.node_id, "label": n.label, "opcode": n.opcode,
                 "fires": n.fires, "busy_cycles": n.busy_cycles,
                 "occupancy": round(n.occupancy, 6),
                 "max_queue_depth": n.max_queue_depth}
                for n in self.nodes
            ],
            "lsq_depth_hist": {str(k): v
                               for k, v in self.lsq_depth_hist.items()},
            "port_wait_hist": {str(k): v
                               for k, v in self.port_wait_hist.items()},
            "memory": {
                "levels": dict(self.mem_levels),
                "reads": self.mem_reads,
                "writes": self.mem_writes,
                "tlb_misses": self.mem_tlb_misses,
                "avg_latency": round(self.mem_avg_latency, 3),
                "stats": dict(self.memory_stats),
            },
        }
        if self.critical_path is not None:
            payload["critical_path"] = self.critical_path.to_json()
        return payload


def build_report(profiler: Profiler, graph, result,
                 critical_path=None, memsys_name: str = "") -> ProfileReport:
    """Fold one run's aggregates into a :class:`ProfileReport`.

    ``result`` is the :class:`~repro.sim.dataflow.DataflowResult`;
    ``critical_path`` an optional
    :class:`~repro.observe.critpath.CriticalPathReport`.
    """
    stats = result.memory_stats
    total_mem = sum(profiler.mem_level_counts.values())
    opcode_fires: dict[str, int] = {}
    nodes: list[NodeProfile] = []
    cycles = max(1, result.cycles)
    for node_id, fires in profiler.fires.items():
        node = graph.nodes.get(node_id)
        if node is None:
            continue
        name = opcode(node)
        opcode_fires[name] = opcode_fires.get(name, 0) + fires
        busy = profiler.busy.get(node_id, 0)
        nodes.append(NodeProfile(
            node_id=node_id,
            label=f"{node.label()}#{node_id}",
            opcode=name,
            fires=fires,
            busy_cycles=busy,
            occupancy=busy / cycles,
            max_queue_depth=profiler.max_queue_depth.get(node_id, 0),
        ))
    nodes.sort(key=lambda n: n.node_id)
    return ProfileReport(
        graph_name=graph.name,
        cycles=result.cycles,
        fired=result.fired,
        memsys_name=memsys_name,
        opcode_fires=opcode_fires,
        nodes=nodes,
        lsq_depth_hist=dict(profiler.lsq_depth_hist),
        port_wait_hist=dict(profiler.port_wait_hist),
        mem_levels=dict(profiler.mem_level_counts),
        mem_reads=profiler.mem_reads,
        mem_writes=profiler.mem_writes,
        mem_tlb_misses=profiler.mem_tlb_misses,
        mem_avg_latency=(profiler.mem_latency_total / total_mem
                         if total_mem else 0.0),
        memory_stats={
            "accesses": stats.accesses,
            "l1_hits": stats.l1_hits,
            "l2_hits": stats.l2_hits,
            "mem_accesses": stats.mem_accesses,
            "tlb_misses": stats.tlb_misses,
            "port_stall_cycles": stats.port_stall_cycles,
        },
        critical_path=critical_path,
    )
