"""Telemetry sessions: one schema-versioned record per compile or run.

The instrumentation built up so far is one-shot — a
:class:`~repro.pipeline.report.CompilationReport` on the program, a
:class:`~repro.observe.profiler.ProfileReport` on the result — and it
evaporates with the process. A :class:`TelemetrySession` makes it
durable: while a session is active, every ``api.simulate(...)`` and
every :class:`~repro.pipeline.driver.CompilerDriver` compile assembles a
:class:`RunRecord` (source hash, full pipeline config, per-stage and
per-pass compile telemetry, engine choice, cycle and fire counts,
profiler aggregates, critical-path attribution, fault settings, host
metadata) and appends it to a persistent
:class:`~repro.observe.store.TelemetryStore`. Two such records — or two
whole run-sets — diff structurally via :mod:`repro.observe.diff`.

Typical use::

    from repro.observe.telemetry import TelemetrySession, telemetry_tags

    with TelemetrySession(label="fig19") as session:
        with telemetry_tags(kernel="adpcm_e", memsys="realistic-2port"):
            program.simulate(args)           # auto-recorded
    print(session.run_ids)

Sessions nest (the innermost records); recording is inert when no
session is active — the ambient check is one function call per
simulation. Explicit control is also available:
``api.simulate(telemetry=session)`` records into a given session, and
``telemetry=False`` suppresses recording under an active one.
"""

from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.observe.store import TelemetryStore

#: Bump when the RunRecord layout changes incompatibly; the differ
#: refuses to compare records across schema versions.
SCHEMA_VERSION = 1

# Innermost-active-session stack (per process; worker processes of a
# parallel sweep each start with an empty stack).
_ACTIVE: list["TelemetrySession"] = []


def current_session() -> "TelemetrySession | None":
    """The innermost active session, or None (recording inert)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def telemetry_tags(**tags):
    """Attach tags to every record made inside the block.

    A no-op when no session is active, so harness code can tag
    unconditionally (``figure=..., kernel=..., memsys=...``) and pay
    nothing unless someone is recording.
    """
    session = current_session()
    if session is None:
        yield
        return
    with session.tags(**tags):
        yield


@dataclass
class RunRecord:
    """One durable, schema-versioned observation of a compile or a run.

    ``kind`` is ``"run"`` (a simulation; ``result`` is filled, and
    ``profile``/``critical_path`` when the run was profiled) or
    ``"compile"`` (``compilation`` is filled). ``run_id`` is assigned by
    the store (content address) and is ``None`` until then.
    """

    kind: str = "run"
    schema: int = SCHEMA_VERSION
    run_id: str | None = None
    created_at: float = 0.0
    session: str | None = None
    label: str | None = None
    tags: dict = field(default_factory=dict)
    entry: str = ""
    graph: str | None = None
    source_sha: str | None = None
    config: dict | None = None          # PipelineConfig, as a dict
    engine: str | None = None
    memsys: str | None = None
    args: list = field(default_factory=list)
    faults: str | None = None
    result: dict | None = None          # cycles, fired, loads, stores, ...
    compilation: dict | None = None     # stages, passes, counters, ...
    profile: dict | None = None         # profiler aggregates
    critical_path: dict | None = None   # by-category attribution
    host: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "schema": self.schema,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "session": self.session,
            "label": self.label,
            "tags": dict(self.tags),
            "entry": self.entry,
            "graph": self.graph,
            "source_sha": self.source_sha,
            "config": self.config,
            "engine": self.engine,
            "memsys": self.memsys,
            "args": list(self.args),
            "faults": self.faults,
            "result": self.result,
            "compilation": self.compilation,
            "profile": self.profile,
            "critical_path": self.critical_path,
            "host": dict(self.host),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    # ------------------------------------------------------------------
    # Identity and convenience accessors used by the differ and the CLI.

    @property
    def kernel(self) -> str | None:
        """The kernel-registry name when tagged, else the entry symbol."""
        return self.tags.get("kernel") or (self.entry or None)

    @property
    def opt_level(self) -> str | None:
        return (self.config or {}).get("opt_level")

    @property
    def cycles(self) -> int | None:
        return (self.result or {}).get("cycles")

    def comparison_key(self) -> tuple:
        """What makes two records comparable: same work, same nominal
        configuration. The engine is deliberately excluded — both
        executors are bit-identical, so cross-engine deltas are real.
        The ablation harness distinguishes otherwise-identical runs
        with a ``variant`` tag, so that participates too."""
        return (self.kind, self.kernel, self.opt_level, self.memsys,
                self.tags.get("variant"),
                tuple(repr(a) for a in self.args))

    def cache_hit_rate(self) -> float | None:
        """L1+L2 hit fraction of all memory accesses, when measured."""
        stats = ((self.result or {}).get("memory_stats")
                 or (self.profile or {}).get("memory_stats"))
        if not stats or not stats.get("accesses"):
            return None
        hits = stats.get("l1_hits", 0) + stats.get("l2_hits", 0)
        return hits / stats["accesses"]

    def attribution_shares(self) -> dict[str, float]:
        """Critical-path category -> share of all cycles ({} if absent)."""
        critical = self.critical_path or {}
        total = critical.get("cycles") or 0
        if not total:
            return {}
        return {category: attributed / total
                for category, attributed
                in (critical.get("by_category") or {}).items()}

    def describe(self) -> str:
        bits = [self.kind, self.kernel or "?"]
        if self.opt_level:
            bits.append(self.opt_level)
        if self.memsys:
            bits.append(self.memsys)
        if self.cycles is not None:
            bits.append(f"{self.cycles} cycles")
        return "/".join(bits[:4]) + (f" ({bits[4]})" if len(bits) > 4 else "")


class TelemetrySession:
    """Context manager that records every compile and run into a store."""

    def __init__(self, store: TelemetryStore | None = None,
                 label: str | None = None,
                 record_compiles: bool = True):
        self.store = store if store is not None else TelemetryStore()
        self.label = label
        self.record_compiles = record_compiles
        self.session_id = self._new_session_id(label)
        # Segment-file override: worker processes of an orchestrated
        # sweep share the parent's session_id but write their own
        # segment so concurrent appends never interleave.
        self.segment: str | None = None
        self.run_ids: list[str] = []
        # Tags live in a ContextVar, not a plain attribute: concurrent
        # asyncio tasks (the compile service) and threads entered via
        # ``asyncio.to_thread`` each see their own tag overlay, so two
        # in-flight requests tagging the same session cannot cross-talk.
        # ``to_thread``/task creation copy the caller's context, so tags
        # set in a request handler propagate into its worker thread.
        self._tags_var: contextvars.ContextVar[dict | None] = \
            contextvars.ContextVar(f"repro-tags-{self.session_id}",
                                   default=None)

    @property
    def _tags(self) -> dict:
        """The tag overlay of the *current* task/thread context."""
        return self._tags_var.get() or {}

    @staticmethod
    def _new_session_id(label: str | None) -> str:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        salt = os.urandom(3).hex()
        prefix = f"{label}-" if label else ""
        return f"{prefix}{stamp}-{salt}"

    # ------------------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE.remove(self)

    @contextmanager
    def tags(self, **tags):
        """Merge ``tags`` into every record made inside the block.

        Context-local: the merge is visible to the current asyncio task
        (and anything it runs via ``asyncio.to_thread``) but not to
        sibling tasks recording into the same session concurrently.
        """
        token = self._tags_var.set({**self._tags, **tags})
        try:
            yield self
        finally:
            self._tags_var.reset(token)

    # ------------------------------------------------------------------

    def record(self, record: RunRecord) -> str:
        """Stamp session identity onto ``record`` and persist it."""
        record.session = self.session_id
        record.label = self.label
        record.tags = {**self._tags, **record.tags}
        run_id = self.store.append(record,
                                   segment=self.segment or self.session_id)
        record.run_id = run_id
        self.run_ids.append(run_id)
        return run_id

    def record_run(self, program, result, *, engine: str | None = None,
                   memsys_name: str | None = None,
                   args: list | None = None, faults=None,
                   tags: dict | None = None) -> str:
        record = build_run_record(program, result, engine=engine,
                                  memsys_name=memsys_name, args=args,
                                  faults=faults, tags=tags)
        return self.record(record)

    def record_compile(self, program, *, tags: dict | None = None) -> str:
        record = build_compile_record(program, tags=tags)
        return self.record(record)

    def records(self) -> list[RunRecord]:
        """This session's records, read back from the store."""
        return self.store.records(session=self.session_id)


# ----------------------------------------------------------------------
# Record assembly. Everything here is duck-typed over the existing
# instrumentation objects (CompilationReport, ProfileReport,
# CriticalPathReport) so this module stays import-light and cycle-free.


def host_metadata() -> dict:
    import platform
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "pid": os.getpid(),
    }


def _config_dict(config) -> dict | None:
    if config is None:
        return None
    return {
        "opt_level": config.opt_level,
        "verify": config.verify,
        "unroll_limit": config.unroll_limit,
        "entry_points_to": [[param, list(names)]
                            for param, names in config.entry_points_to],
        "filename": config.filename,
    }


def _compilation_dict(report) -> dict | None:
    """The per-stage / per-pass compile telemetry, condensed."""
    if report is None:
        return None
    final = report.final_snapshot
    return {
        "stages": [{"name": record.name,
                    "wall_time": round(record.wall_time, 6),
                    "nodes": record.after.nodes if record.after else None}
                   for record in report.stages],
        "passes": [{"name": record.name,
                    "group": record.group,
                    "wall_time": round(record.wall_time, 6),
                    "changes": record.changes,
                    "d_nodes": record.nodes_delta,
                    "d_loads": record.loads_delta,
                    "d_stores": record.stores_delta,
                    "d_tokens": record.tokens_delta}
                   for record in report.passes],
        "counters": dict(report.counters),
        "verify_calls": report.verify_calls,
        "verify_time": round(report.verify_time, 6),
        "total_wall_time": round(report.total_wall_time, 6),
        "cache_status": report.cache_status,
        "final_ir": final.to_dict() if final else None,
    }


def _profile_dict(profile, top: int = 10) -> dict | None:
    """Profiler aggregates worth keeping: opcode mix, occupancy of the
    busiest operators, LSQ/port-wait histograms, cache/TLB breakdowns."""
    if profile is None:
        return None
    return {
        "opcode_fires": dict(profile.opcode_fires),
        "top_nodes": [{"label": node.label, "opcode": node.opcode,
                       "fires": node.fires,
                       "busy_cycles": node.busy_cycles,
                       "occupancy": round(node.occupancy, 6),
                       "max_queue_depth": node.max_queue_depth}
                      for node in profile.top_nodes(top)],
        "lsq_depth_hist": {str(k): v
                           for k, v in profile.lsq_depth_hist.items()},
        "port_wait_hist": {str(k): v
                           for k, v in profile.port_wait_hist.items()},
        "mem_levels": dict(profile.mem_levels),
        "mem_reads": profile.mem_reads,
        "mem_writes": profile.mem_writes,
        "mem_tlb_misses": profile.mem_tlb_misses,
        "mem_avg_latency": round(profile.mem_avg_latency, 3),
        "memory_stats": dict(profile.memory_stats),
    }


def _critical_path_dict(critical) -> dict | None:
    if critical is None:
        return None
    return {
        "cycles": critical.cycles,
        "by_category": dict(critical.by_category),
        "chain_length": critical.chain_length,
    }


def build_run_record(program, result, *, engine: str | None = None,
                     memsys_name: str | None = None,
                     args: list | None = None, faults=None,
                     tags: dict | None = None) -> RunRecord:
    """Assemble the full record of one finished simulation."""
    report = getattr(program, "report", None)
    profile = getattr(result, "profile", None)
    stats = result.memory_stats
    return RunRecord(
        kind="run",
        created_at=time.time(),
        tags=dict(tags or {}),
        entry=getattr(program, "entry", ""),
        graph=getattr(program.graph, "name", None),
        source_sha=getattr(report, "source_sha", None),
        config=_config_dict(getattr(report, "config", None)),
        engine=engine,
        memsys=memsys_name,
        args=[_plain(value) for value in (args or [])],
        faults=faults.describe() if faults is not None else None,
        result={
            "return_value": _plain(result.return_value),
            "cycles": result.cycles,
            "fired": result.fired,
            "loads": result.loads,
            "stores": result.stores,
            "skipped_memops": result.skipped_memops,
            "memory_stats": {
                "accesses": stats.accesses,
                "l1_hits": stats.l1_hits,
                "l2_hits": stats.l2_hits,
                "mem_accesses": stats.mem_accesses,
                "tlb_misses": stats.tlb_misses,
                "port_stall_cycles": stats.port_stall_cycles,
            },
        },
        profile=_profile_dict(profile),
        critical_path=_critical_path_dict(
            getattr(profile, "critical_path", None)),
        host=host_metadata(),
    )


def build_compile_record(program, *, tags: dict | None = None) -> RunRecord:
    """Assemble the record of one compilation (driver or cache hit)."""
    report = getattr(program, "report", None)
    return RunRecord(
        kind="compile",
        created_at=time.time(),
        tags=dict(tags or {}),
        entry=getattr(program, "entry", ""),
        graph=getattr(program.graph, "name", None),
        source_sha=getattr(report, "source_sha", None),
        config=_config_dict(getattr(report, "config", None)),
        compilation=_compilation_dict(report),
        host=host_metadata(),
    )


def _plain(value):
    """JSON-safe projection of a simulated value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)
