"""The service wire schema: requests, validation, and content keys.

One request describes one job — ``compile`` (ensure an artifact exists)
or ``simulate`` (compile, then execute spatially). The JSON payload is
validated into an immutable :class:`JobRequest` on the server edge, so
everything past the front door works with typed, checked data.

Identity is content-addressed twice, mirroring the pipeline:

- :meth:`JobRequest.compile_key` is exactly the compilation cache's
  fingerprint (source + output-relevant config), so request dedup and
  artifact reuse are the same equality;
- :meth:`JobRequest.simulate_key` extends it with everything that can
  change a simulation's outcome (args, memory system, engine, event
  limit, wall budget), so two in-flight identical simulations coalesce
  onto one execution.

The wire format is deliberately boring HTTP/1.1: JSON request bodies,
and either a single JSON response or a streamed
``application/x-ndjson`` body — one JSON event object per line
(``accepted`` → ``compile`` → [``result``] → ``done``, or ``error``) —
so results stream back incrementally over a plain socket with no
dependencies on either side.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Bump when the request/event schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Streamed event names, in the order a successful job emits them.
EVENT_ACCEPTED = "accepted"
EVENT_COMPILE = "compile"
EVENT_RESULT = "result"
EVENT_DONE = "done"
EVENT_ERROR = "error"

#: Job kinds the server accepts.
KINDS = ("compile", "simulate")

#: Default TCP port of `repro serve`.
DEFAULT_PORT = 8577

#: Largest request body the server will read (a MiniC source plus
#: arguments fits in a fraction of this).
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceError(ReproError):
    """A malformed request, an unreachable/overloaded server, or a job
    that failed server-side."""

    def __init__(self, message: str, *, status: int | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        #: HTTP status when the failure came from a response (429 means
        #: backpressure: retry after ``retry_after`` seconds).
        self.status = status
        self.retry_after = retry_after


@dataclass(frozen=True)
class JobRequest:
    """One validated compile or compile+simulate job."""

    kind: str
    source: str
    entry: str
    opt_level: str = "full"
    verify: str = "final"
    unroll_limit: int = 0
    entry_points_to: tuple[tuple[str, tuple[str, ...]], ...] = ()
    cache_only: bool = False
    # Simulation fields (ignored for kind="compile").
    args: tuple[int, ...] = ()
    memsys: str = "perfect"
    engine: str | None = None
    event_limit: int | None = None
    wall_limit: float | None = None
    # Client-side identity for provenance tagging; free-form.
    client: str | None = None

    # ------------------------------------------------------------------
    # Construction / projection

    @classmethod
    def from_payload(cls, payload: dict, kind: str) -> "JobRequest":
        """Validate a JSON payload into a request; raises ServiceError."""
        from repro.api import SIM_ENGINES
        from repro.pipeline.config import OPT_LEVELS, VERIFY_POLICIES
        from repro.sim.memsys import NAMED_SYSTEMS

        if kind not in KINDS:
            raise ServiceError(f"unknown job kind {kind!r}", status=404)
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object",
                               status=400)

        def bad(message: str) -> ServiceError:
            return ServiceError(f"invalid request: {message}", status=400)

        source = payload.get("source")
        entry = payload.get("entry")
        if not isinstance(source, str) or not source.strip():
            raise bad("'source' must be non-empty MiniC text")
        if not isinstance(entry, str) or not entry.isidentifier():
            raise bad("'entry' must be a function name")
        opt_level = payload.get("opt_level", "full")
        if opt_level not in OPT_LEVELS:
            raise bad(f"'opt_level' must be one of {OPT_LEVELS}")
        verify = payload.get("verify", "final")
        if verify not in VERIFY_POLICIES:
            raise bad(f"'verify' must be one of {VERIFY_POLICIES}")
        unroll_limit = payload.get("unroll_limit", 0)
        if not isinstance(unroll_limit, int) or unroll_limit < 0:
            raise bad("'unroll_limit' must be a non-negative integer")
        points_to = payload.get("entry_points_to") or {}
        if not isinstance(points_to, dict) or not all(
                isinstance(param, str) and isinstance(names, (list, tuple))
                and all(isinstance(name, str) for name in names)
                for param, names in points_to.items()):
            raise bad("'entry_points_to' must map parameter names to "
                      "lists of global names")
        normalized = tuple(sorted(
            (param, tuple(names)) for param, names in points_to.items()))
        args = payload.get("args", [])
        if not isinstance(args, (list, tuple)) or not all(
                isinstance(value, int) and not isinstance(value, bool)
                for value in args):
            raise bad("'args' must be a list of integers")
        memsys = payload.get("memsys", "perfect")
        if memsys not in NAMED_SYSTEMS:
            raise bad(f"'memsys' must be one of {sorted(NAMED_SYSTEMS)}")
        engine = payload.get("engine")
        if engine is not None and engine not in SIM_ENGINES:
            raise bad(f"'engine' must be one of {SIM_ENGINES}")
        event_limit = payload.get("event_limit")
        if event_limit is not None and (not isinstance(event_limit, int)
                                        or event_limit < 0):
            raise bad("'event_limit' must be a non-negative integer")
        wall_limit = payload.get("wall_limit")
        if wall_limit is not None and (not isinstance(wall_limit, (int, float))
                                       or wall_limit <= 0):
            raise bad("'wall_limit' must be a positive number of seconds")
        client = payload.get("client")
        if client is not None and not isinstance(client, str):
            raise bad("'client' must be a string")
        return cls(kind=kind, source=source, entry=entry,
                   opt_level=opt_level, verify=verify,
                   unroll_limit=unroll_limit, entry_points_to=normalized,
                   cache_only=bool(payload.get("cache_only", False)),
                   args=tuple(args), memsys=memsys, engine=engine,
                   event_limit=event_limit,
                   wall_limit=float(wall_limit) if wall_limit else None,
                   client=client)

    def to_payload(self) -> dict:
        """The JSON form of this request (picklable, wire-identical)."""
        return {
            "source": self.source,
            "entry": self.entry,
            "opt_level": self.opt_level,
            "verify": self.verify,
            "unroll_limit": self.unroll_limit,
            "entry_points_to": {param: list(names)
                                for param, names in self.entry_points_to},
            "cache_only": self.cache_only,
            "args": list(self.args),
            "memsys": self.memsys,
            "engine": self.engine,
            "event_limit": self.event_limit,
            "wall_limit": self.wall_limit,
            "client": self.client,
        }

    def pipeline_config(self):
        from repro.pipeline.config import PipelineConfig
        return PipelineConfig.make(
            opt_level=self.opt_level, verify=self.verify,
            unroll_limit=self.unroll_limit,
            entry_points_to={param: list(names)
                             for param, names in self.entry_points_to}
            or None)

    # ------------------------------------------------------------------
    # Content keys

    def compile_key(self, cache) -> str:
        """The compilation-cache fingerprint of this request's artifact."""
        return cache.key(self.source, self.entry, self.pipeline_config())

    def simulate_key(self, compile_key: str) -> str:
        """Content address of the full simulation (artifact + run knobs).

        Two requests with the same simulate key would produce identical
        rows, so the server coalesces them onto one execution. The wall
        budget participates: a request with a larger budget must not be
        handed another request's timeout.
        """
        payload = json.dumps({
            "artifact": compile_key,
            "args": list(self.args),
            "memsys": self.memsys,
            "engine": self.engine,
            "event_limit": self.event_limit,
            "wall_limit": self.wall_limit,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class ServiceStats:
    """The server's own operational counters (the ``/v1/health`` body)."""

    received: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0            # 429 backpressure responses
    cache_warm: int = 0          # answered from the on-disk cache
    compile_deduped: int = 0     # coalesced onto an in-flight compile
    compiles_executed: int = 0   # actual compile executions
    compile_batches: int = 0
    largest_batch: int = 0
    sims_executed: int = 0
    sim_deduped: int = 0         # coalesced onto an in-flight simulation
    sim_retries: int = 0
    batch_sizes: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "received": self.received,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cache_warm": self.cache_warm,
            "compile_deduped": self.compile_deduped,
            "compiles_executed": self.compiles_executed,
            "compile_batches": self.compile_batches,
            "largest_batch": self.largest_batch,
            "sims_executed": self.sims_executed,
            "sim_deduped": self.sim_deduped,
            "sim_retries": self.sim_retries,
        }
