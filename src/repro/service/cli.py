"""Command-line faces of the service: ``repro serve``, ``repro
submit``, and ``repro cache``.

::

    repro serve --port 8577 --workers 4 --retries 1
    repro submit program.c --entry kernel --simulate --args 20
    repro submit program.c --entry kernel --host farm01 --json
    repro cache stat program.c --entry kernel --opt full
    repro cache stat program.c --entry kernel --host farm01  # ask a server

``serve`` blocks until SIGINT/SIGTERM or a client's ``/v1/shutdown``,
drains in-flight jobs, prints its operational counters, and exits 0.
``submit`` streams the job's events as they arrive (human-readable by
default, raw NDJSON with ``--json``) and exits nonzero when the job
fails. ``cache stat`` is the warmth probe: locally it runs the
``cache_only`` compile path against the shared artifact store; with
``--host`` it asks a running server instead — neither ever compiles.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.service.protocol import DEFAULT_PORT, JobRequest, ServiceError

# ----------------------------------------------------------------------
# repro serve


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run the async compile/simulate service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default {DEFAULT_PORT}; 0 = "
                             f"ephemeral)")
    parser.add_argument("--name", default="repro-service",
                        help="service identity in telemetry tags")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="jobs in flight before 429 backpressure "
                             "(default 256)")
    parser.add_argument("--batch-window", type=float, default=0.01,
                        metavar="SECONDS",
                        help="compile micro-batching window "
                             "(default 0.01)")
    parser.add_argument("--batch-max", type=int, default=16,
                        help="largest compile batch (default 16)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="compile process-pool width "
                             "(default: cpu count)")
    parser.add_argument("--sim-executor", default="inline",
                        choices=["inline", "process"],
                        help="simulation backend: server worker threads "
                             "or the shared process pool")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per transiently-failing "
                             "simulation (default 1)")
    parser.add_argument("--wall-limit", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-simulation wall budget")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact store root (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-pegasus)")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="telemetry store root (default: "
                             "$REPRO_TELEMETRY_DIR or .repro/telemetry)")
    parser.add_argument("--no-record", action="store_true",
                        help="do not record jobs into the telemetry store")
    parser.add_argument("--trace", action="store_true",
                        help="record a distributed trace per request "
                             "(export with `repro trace`)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="trace shard directory (default: "
                             "$REPRO_TRACE_DIR or .repro/traces)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        metavar="SECONDS",
                        help="how long shutdown waits for in-flight jobs")
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    import signal

    from repro.service.server import CompileService, ServiceConfig
    options = build_serve_parser().parse_args(argv)
    config = ServiceConfig(
        host=options.host, port=options.port, name=options.name,
        max_queue=options.max_queue, batch_window=options.batch_window,
        batch_max=options.batch_max, workers=options.workers,
        sim_executor=options.sim_executor, retries=options.retries,
        wall_limit=options.wall_limit, cache_root=options.cache_dir,
        telemetry_root=options.telemetry_dir,
        record=not options.no_record, trace=options.trace,
        trace_dir=options.trace_dir, drain_grace=options.drain_grace)
    service = CompileService(config)

    def _terminate(signum, frame):
        # The event loop runs on a worker thread, so loop-level signal
        # handlers never installed; funnel SIGTERM through the same
        # drain path SIGINT takes.
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except (ValueError, OSError):
        pass  # not the main thread (embedded use); rely on /v1/shutdown
    try:
        service.start_in_thread()
        # The bound address on stdout as soon as the socket listens, so
        # scripts can wait for it (CI smoke, ephemeral ports).
        print(f"{config.name}: listening on {config.host}:{service.port}"
              + (f" (session {service.session.session_id})"
                 if service.session is not None else ""),
              flush=True)
        if service.tracer is not None:
            print(f"{config.name}: tracing to {service.tracer.root}",
                  flush=True)
        service._thread.join()
    except KeyboardInterrupt:
        service.stop(drain=True)
    stats = service.stats
    print(f"{config.name}: drained; {stats.completed} completed, "
          f"{stats.failed} failed, {stats.rejected} rejected, "
          f"{stats.compiles_executed} compiles executed, "
          f"{stats.compile_deduped + stats.cache_warm} compile requests "
          f"answered without compiling", flush=True)
    return 0


# ----------------------------------------------------------------------
# repro submit


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit one compile or compile+simulate job to a "
                    "running service.")
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--simulate", action="store_true",
                        help="also execute spatially (compile-only "
                             "otherwise)")
    parser.add_argument("--args", nargs="*", type=int, default=[],
                        help="integer arguments (implies --simulate)")
    parser.add_argument("--opt", default="full",
                        choices=["none", "basic", "medium", "full"])
    parser.add_argument("--verify", default="final",
                        help="verification policy (default: final)")
    parser.add_argument("--unroll-limit", type=int, default=0)
    parser.add_argument("--memory", default="perfect", dest="memsys")
    parser.add_argument("--engine", default=None,
                        choices=["compiled", "codegen", "interp"])
    parser.add_argument("--event-limit", type=int, default=None)
    parser.add_argument("--wall-limit", type=float, default=None)
    parser.add_argument("--cache-only", action="store_true",
                        help="warmth probe: never compile")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--client", default=None,
                        help="client identity for provenance tags")
    parser.add_argument("--wait", action="store_true",
                        help="sleep and retry on 429 backpressure")
    parser.add_argument("--json", action="store_true",
                        help="print the raw NDJSON events")
    return parser


def submit_main(argv: list[str] | None = None) -> int:
    from repro.service.client import ServiceClient
    options = build_submit_parser().parse_args(argv)
    try:
        with open(options.source) as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kind = "simulate" if (options.simulate or options.args) else "compile"
    payload = {
        "source": source, "entry": options.entry,
        "opt_level": options.opt, "verify": options.verify,
        "unroll_limit": options.unroll_limit,
        "cache_only": options.cache_only, "args": options.args,
        "memsys": options.memsys, "engine": options.engine,
        "event_limit": options.event_limit,
        "wall_limit": options.wall_limit, "client": options.client,
    }
    client = ServiceClient(host=options.host, port=options.port,
                           timeout=options.timeout,
                           client_id=options.client)
    try:
        request = JobRequest.from_payload(payload, kind)
        if options.json:
            failed = False
            for event in client.events(request):
                print(json.dumps(event), flush=True)
                failed = failed or event.get("event") == "error"
            return 1 if failed else 0
        outcome = client.submit(request, wait=options.wait)
    except (ServiceError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    summary = outcome.compile or {}
    print(f"request : {outcome.request_id}  ({kind})")
    print(f"artifact: {summary.get('key', '?')[:16]}  "
          f"cache={outcome.cache}")
    if "wall_time" in summary:
        print(f"compile : {summary['wall_time'] * 1e3:.1f} ms, "
              f"{summary.get('nodes', '?')} nodes")
    if outcome.result is not None:
        row = outcome.result
        print(f"result  : {row.get('return_value')}")
        print(f"cycles  : {row.get('cycles')}  ({row.get('memsys')} "
              f"memory, {row.get('engine')} engine)")
        print(f"memops  : {row.get('loads')} loads, "
              f"{row.get('stores')} stores")
    if outcome.elapsed is not None:
        print(f"elapsed : {outcome.elapsed * 1e3:.1f} ms server-side")
    return 0


# ----------------------------------------------------------------------
# repro cache


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Inspect the content-addressed compilation cache.")
    commands = parser.add_subparsers(dest="command", required=True)
    stat_cmd = commands.add_parser(
        "stat", help="probe artifact warmth without compiling")
    stat_cmd.add_argument("source", nargs="?", default=None,
                          help="MiniC source file (omit for store-wide "
                               "totals only)")
    stat_cmd.add_argument("--entry", default="main")
    stat_cmd.add_argument("--opt", default="full",
                          choices=["none", "basic", "medium", "full"])
    stat_cmd.add_argument("--unroll-limit", type=int, default=0)
    stat_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="cache root (default: $REPRO_CACHE_DIR "
                               "or ~/.cache/repro-pegasus)")
    stat_cmd.add_argument("--host", default=None,
                          help="ask a running service instead of the "
                               "local cache directory")
    stat_cmd.add_argument("--port", type=int, default=DEFAULT_PORT)
    stat_cmd.add_argument("--json", action="store_true")
    return parser


def cache_main(argv: list[str] | None = None) -> int:
    options = build_cache_parser().parse_args(argv)
    try:
        return _cache_stat(options)
    except (OSError, ServiceError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cache_stat(options) -> int:
    from repro.pipeline.cache import CompilationCache
    source = None
    if options.source is not None:
        with open(options.source) as handle:
            source = handle.read()
    if options.host is not None:
        if source is None:
            print("error: --host needs a source file to probe",
                  file=sys.stderr)
            return 2
        from repro.service.client import ServiceClient
        client = ServiceClient(host=options.host, port=options.port)
        probe = client.cache_stat(source, options.entry,
                                  opt_level=options.opt,
                                  unroll_limit=options.unroll_limit)
    else:
        cache = CompilationCache(options.cache_dir)
        probe = None
        if source is not None:
            from repro.api import compile_minic
            program = compile_minic(source, options.entry,
                                    opt_level=options.opt,
                                    unroll_limit=options.unroll_limit,
                                    cache=cache, cache_only=True)
            from repro.pipeline.config import PipelineConfig
            config = PipelineConfig.make(opt_level=options.opt,
                                         verify="every-pass",
                                         unroll_limit=options.unroll_limit,
                                         filename=options.source)
            probe = {"key": cache.key(source, options.entry, config),
                     "warm": program is not None,
                     "cache_root": str(cache.root)}
        totals = cache.stats()
        stale = len(cache.stale_tmp())
        if options.json:
            payload = {"entries": totals["entries"],
                       "bytes": totals["bytes"], "stale_tmp": stale,
                       "cache_root": str(cache.root)}
            if probe is not None:
                payload["probe"] = probe
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0 if probe is None or probe["warm"] else 1
        if probe is not None:
            state = "WARM" if probe["warm"] else "cold"
            print(f"artifact: {probe['key'][:16]}  [{state}]")
        print(f"cache   : {totals['entries']} artifact(s), "
              f"{totals['bytes'] / 1024:.1f} KiB at {cache.root}"
              + (f", {stale} stale tmp file(s)" if stale else ""))
        return 0 if probe is None or probe["warm"] else 1
    # Remote probe result.
    if options.json:
        print(json.dumps(probe, indent=2, sort_keys=True))
    else:
        state = "WARM" if probe["warm"] else "cold"
        print(f"artifact: {probe['key'][:16]}  [{state}]  "
              f"(server cache {probe['cache_root']})")
    return 0 if probe["warm"] else 1
