"""Compilation-as-a-service: the async compile/simulate front-end.

The library compiles MiniC to spatial dataflow graphs and simulates
them; this package puts a long-running request front-end on that
pipeline so many clients can drive it at once:

- :mod:`repro.service.server` — a stdlib-only asyncio HTTP/JSON server
  (``repro serve``) that accepts concurrent compile and
  compile+simulate jobs, dedupes identical requests in-flight and
  against the content-addressed compilation cache, batches cache-miss
  compiles onto the shared process pool, and routes simulations through
  the orchestrate :class:`~repro.orchestrate.scheduler.Scheduler` so
  they inherit its retry/timeout semantics;
- :mod:`repro.service.client` — the blocking client library
  (``repro submit`` is its CLI face);
- :mod:`repro.service.protocol` — the request schema, validation, and
  content keys both sides share.

Every job is recorded as a telemetry RunRecord tagged
``{service, client, request}``, so provenance questions ("how many
compile executions did N identical submissions cost?") are answered
from the store. See ``docs/service.md`` for the protocol and the
failure model.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import JobRequest, ServiceError
from repro.service.server import CompileService, ServiceConfig

__all__ = [
    "CompileService",
    "JobRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
]
