"""Job bodies the service executes — module-level, hence picklable.

The server never compiles or simulates on its event loop: compile jobs
go to the shared :class:`~repro.orchestrate.executors.PoolExecutor`
(process-pool with inline degradation) and simulation jobs run through
the orchestrate :class:`~repro.orchestrate.scheduler.Scheduler`, whose
``_run_job`` wrapper already handles telemetry re-establishment and
wall-limit injection in workers. The compile path has its own small
ambient-session shim here (:func:`_worker_session`) because it bypasses
the scheduler to reach the pool directly for batching.
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext

from repro.service.protocol import JobRequest, ServiceError


@contextmanager
def _worker_session(session_spec: dict | None):
    """Rebuild the coordinator's telemetry session in a pool worker.

    Mirrors the scheduler's worker-side behavior: same session id, but
    a per-pid segment file so concurrent worker appends never share a
    file. A no-op when no session was active or when we are still in
    the coordinator process (inline-degraded pool), where the ambient
    session is already in scope.
    """
    if session_spec is None or os.getpid() == session_spec["pid"]:
        with nullcontext():
            yield
        return
    from repro.observe.store import TelemetryStore
    from repro.observe.telemetry import TelemetrySession
    session = TelemetrySession(
        store=TelemetryStore(session_spec["root"]),
        label=session_spec["label"],
        record_compiles=session_spec.get("record_compiles", True))
    session.session_id = session_spec["session_id"]
    session.segment = f"{session_spec['session_id']}.w{os.getpid()}"
    with session:
        yield


def compile_artifact(payload: dict, cache_root: str,
                     session_spec: dict | None, tags: dict,
                     trace_ctx: dict | None = None) -> dict:
    """Ensure the artifact for ``payload`` exists in the shared cache.

    Runs in a pool worker (or inline when the pool degraded). Returns a
    compile summary the server streams to every client waiting on this
    key. The compile is recorded as a RunRecord (kind="compile") under
    the service session, tagged with the leader request's identity —
    the provenance trail that proves N identical submissions cost one
    compile execution. ``trace_ctx`` is the leader request's trace
    position: adopted here, the driver's compile/stage spans parent
    under the request span even from a pool worker.
    """
    from repro.observe.telemetry import telemetry_tags
    from repro.observe.tracing import adopt_context
    from repro.pipeline.cache import CompilationCache
    from repro.pipeline.driver import CompilerDriver

    request = JobRequest.from_payload(payload, kind="compile")
    config = request.pipeline_config()
    cache = CompilationCache(cache_root)
    with _worker_session(session_spec):
        with adopt_context(trace_ctx), telemetry_tags(**tags):
            program = CompilerDriver(config, cache=cache).compile(
                request.source, request.entry)
    report = program.report
    summary = {
        "key": cache.key(request.source, request.entry, config),
        "cache": getattr(report, "cache_status", None) or "miss",
        "entry": request.entry,
        "opt_level": request.opt_level,
        "nodes": len(program.graph),
    }
    if report is not None:
        summary["wall_time"] = round(report.total_wall_time, 6)
        summary["passes"] = len(report.passes)
    return summary


def simulate_row(cache_root: str, key: str, args: list, memsys_name: str,
                 engine: str | None, event_limit: int | None,
                 wall_limit: float | None = None) -> dict:
    """Execute one simulation against a cached artifact; returns a row.

    Scheduled through the orchestrate Scheduler, so retry/timeout
    classification, wall-limit injection, and worker-side telemetry all
    come for free. A missing artifact is a deterministic failure (the
    compile phase completed before this job was submitted, so the only
    way here is external cache eviction) — raising ServiceError makes
    the scheduler report it terminally instead of retrying.
    """
    from repro.pipeline.cache import CompilationCache
    from repro.sim.memsys import MemorySystem, named_system

    cache = CompilationCache(cache_root)
    program = cache.get(key)
    if program is None:
        raise ServiceError(f"artifact {key[:12]} vanished from the cache "
                           f"at {cache_root} (evicted between compile "
                           f"and simulate?)")
    result = program.simulate(
        list(args),
        memsys=MemorySystem(named_system(memsys_name)),
        engine=engine,
        event_limit=event_limit,
        wall_limit=wall_limit,
    )
    return {
        "return_value": result.return_value,
        "cycles": result.cycles,
        "fired": result.fired,
        "loads": result.loads,
        "stores": result.stores,
        "skipped_memops": result.skipped_memops,
        "memsys": memsys_name,
        "engine": engine or "compiled",
    }
