"""The asyncio compile/simulate server behind ``repro serve``.

Stdlib-only: one :func:`asyncio.start_server` loop speaking just enough
HTTP/1.1 (JSON bodies in, NDJSON event streams out) that any client —
ours, or ``curl`` — can drive it. The event loop never compiles or
simulates; it only coordinates:

- **dedup** — requests are content-addressed with the same fingerprints
  the pipeline uses (:meth:`~repro.service.protocol.JobRequest
  .compile_key` / ``simulate_key``). An identical request arriving while
  a matching one is in flight awaits the leader's future instead of
  executing (``asyncio.shield`` keeps a follower's disconnect from
  cancelling shared work), and a compile whose artifact is already on
  disk is answered from the cache without touching a worker;
- **batching** — cache-miss compiles land on an ``asyncio.Queue`` a
  batcher task drains with a small time window, submitting each batch
  onto the shared :class:`~repro.orchestrate.executors.PoolExecutor`
  (process pool with inline degradation, so the server also runs in
  sandboxes without process primitives);
- **scheduling** — each simulation runs as a single-job
  :class:`~repro.orchestrate.dag.JobDAG` through the orchestrate
  :class:`~repro.orchestrate.scheduler.Scheduler` in a worker thread, so
  retry classification, wall-limit injection, and provenance tagging are
  the sweep machinery's, not reimplemented here;
- **admission control** — at most ``max_queue`` jobs are in flight; the
  next one is refused with ``429`` and a ``Retry-After`` hint instead of
  growing an unbounded backlog;
- **draining** — ``POST /v1/shutdown`` flips the server into draining
  (new jobs get ``503``), waits for in-flight jobs, then exits cleanly.

Every job is recorded into the service's
:class:`~repro.observe.telemetry.TelemetrySession` tagged
``{service, client, request}``: executed compiles via the driver
(``cache_status="miss"``), coalesced/warm ones as lightweight records
(``"deduped"``/``"warm"``), simulations via the scheduler. N identical
submissions therefore leave exactly one ``cache_status="miss"`` compile
record — the provenance proof of dedup.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.service import jobs
from repro.service.protocol import (
    EVENT_ACCEPTED,
    EVENT_COMPILE,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_RESULT,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    JobRequest,
    ServiceError,
    ServiceStats,
)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Retry-After hint (seconds) sent with 429 backpressure responses.
RETRY_AFTER = 0.05


def _clean_mp_context():
    """A forkserver multiprocessing context, pre-started before any
    client connects.

    Plain fork would snapshot the server at submit time — pool workers
    forked while a request is in flight inherit that client's socket
    fd, and the duplicate keeps the connection from ever delivering EOF
    after the server closes its copy. Forkserver children descend from
    a pristine early process instead: no client fds, no mid-operation
    thread/lock state. Falls back to the platform default (and
    ultimately to PoolExecutor's inline degradation) where forkserver
    is unavailable.
    """
    try:
        import __main__
        import multiprocessing
        from multiprocessing import forkserver
        main_file = getattr(__main__, "__file__", None)
        if getattr(__main__, "__spec__", None) is None and (
                main_file is None or not os.path.exists(main_file)):
            # Forkserver children re-run the main module's preparation;
            # an unimportable main (stdin scripts, embedded REPLs)
            # would crash every worker. Fall back to the platform
            # default there.
            return None
        context = multiprocessing.get_context("forkserver")
        forkserver.ensure_running()
        return context
    except (ImportError, ValueError, OSError):
        return None


def _consume_exception(future) -> None:
    """Mark a shared in-flight future's exception as retrieved even
    when every waiter disconnected before it settled (otherwise the
    loop logs 'exception was never retrieved' on gc)."""
    if not future.cancelled():
        future.exception()


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral (tests/bench)
    name: str = "repro-service"
    #: Admission limit: jobs in flight before new ones get 429.
    max_queue: int = 256
    #: Compile micro-batching: how long the batcher waits to fill a
    #: batch, and the most compiles one batch submits together.
    batch_window: float = 0.01
    batch_max: int = 16
    #: Process-pool width for compiles (None = cpu count).
    workers: int | None = None
    #: Simulation backend: "inline" runs each sim in a server worker
    #: thread (robust everywhere); "process" shares the compile pool.
    sim_executor: str = "inline"
    #: Worker threads driving simulations/pool handoff.
    sim_threads: int = 16
    #: Scheduler policy for simulations.
    retries: int = 1
    wall_limit: float | None = None
    #: Shared artifact store root (None = $REPRO_CACHE_DIR / default).
    cache_root: str | None = None
    #: Telemetry store root (None = $REPRO_TELEMETRY_DIR / default).
    telemetry_root: str | None = None
    record: bool = True
    #: Distributed tracing: record a span tree per request (root
    #: ``request:<id>`` down through scheduler/pipeline spans) into
    #: ``trace_dir`` shards.
    trace: bool = False
    trace_dir: str | None = None
    #: How long a draining shutdown waits for in-flight jobs.
    drain_grace: float = 30.0


class CompileService:
    """One server instance: configure, then :meth:`run` (blocking) or
    :meth:`start_in_thread` (tests, bench, notebooks)."""

    def __init__(self, config: ServiceConfig | None = None):
        from repro.observe.metrics import MetricsRegistry
        from repro.pipeline.cache import CompilationCache

        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.cache = CompilationCache(self.config.cache_root)
        #: Live counters/gauges/histograms, served on ``/v1/metrics``.
        #: Per-service (not global) so parallel test services don't
        #: bleed into each other; made ambient for the server's
        #: lifetime so scheduler/pipeline instrumentation lands here.
        self.metrics = MetricsRegistry()
        self.tracer = None             # Tracer when config.trace
        self.session = None            # TelemetrySession when recording
        self.port: int | None = None   # bound port once listening
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._draining = False
        self._active = 0               # jobs admitted and not finished
        self._counter = 0
        self._inflight_compiles: dict[str, asyncio.Future] = {}
        self._inflight_sims: dict[str, asyncio.Future] = {}
        self._compile_queue: asyncio.Queue | None = None
        self._stop: asyncio.Event | None = None
        self._pool = None              # shared PoolExecutor

    # ------------------------------------------------------------------
    # Lifecycle

    def run(self) -> int:
        """Serve until shutdown (the ``repro serve`` body); exit status."""
        asyncio.run(self._main())
        return 0

    def start_in_thread(self) -> "CompileService":
        """Run the server on a daemon thread; returns once listening."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service failed to start listening")
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop a :meth:`start_in_thread` server from any thread."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        loop.call_soon_threadsafe(self._begin_shutdown, drain)
        if self._thread is not None:
            self._thread.join(timeout=self.config.drain_grace + 10)

    async def _main(self) -> None:
        from repro.observe.metrics import disable_metrics, enable_metrics
        from repro.observe.store import TelemetryStore
        from repro.observe.telemetry import TelemetrySession
        from repro.orchestrate.executors import PoolExecutor

        enable_metrics(self.metrics)
        if self.config.trace:
            from repro.observe.tracing import Tracer
            self.tracer = Tracer(self.config.trace_dir)
            self.tracer.__enter__()
        self._loop = asyncio.get_running_loop()
        self._loop.set_default_executor(
            ThreadPoolExecutor(max_workers=self.config.sim_threads,
                               thread_name_prefix="repro-sim"))
        self._stop = asyncio.Event()
        self._compile_queue = asyncio.Queue()
        self._pool = PoolExecutor(max_workers=self.config.workers,
                                  mp_context=_clean_mp_context())
        if self.config.record:
            store = (TelemetryStore(self.config.telemetry_root)
                     if self.config.telemetry_root else TelemetryStore())
            self.session = TelemetrySession(store=store,
                                            label=self.config.name)
            self.session.__enter__()
        self._install_signal_handlers()
        batcher = asyncio.ensure_future(self._batcher())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            batcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await batcher
            self._pool.shutdown()
            if self.session is not None:
                self.session.__exit__(None, None, None)
            if self.tracer is not None:
                self.tracer.__exit__(None, None, None)
            disable_metrics(self.metrics)

    def _install_signal_handlers(self) -> None:
        import signal
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(
                    signum, self._begin_shutdown, True)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without loop signals

    def _begin_shutdown(self, drain: bool) -> None:
        """Flip into draining and stop once in-flight jobs finish."""
        if self._draining and drain:
            return
        self._draining = True
        if not drain:
            self._stop.set()
            return
        asyncio.ensure_future(self._drain_then_stop())

    async def _drain_then_stop(self) -> None:
        deadline = self._loop.time() + self.config.drain_grace
        while self._active and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        self._stop.set()

    # ------------------------------------------------------------------
    # HTTP front door

    async def _handle_connection(self, reader, writer) -> None:
        try:
            method, path = await self._read_request_line(reader)
            headers = await self._read_headers(reader)
            length = int(headers.get("content-length") or 0)
            if length > MAX_BODY_BYTES:
                return await self._send_json(
                    writer, 413, {"error": "request body too large"})
            body = await reader.readexactly(length) if length else b""
            await self._route(method, path, body, writer)
        except (asyncio.IncompleteReadError, ConnectionError,
                BrokenPipeError):
            pass  # client went away; shared work continues regardless
        except ServiceError as error:
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await self._send_json(writer, error.status or 400,
                                      {"error": str(error)})
        except Exception as error:  # noqa: BLE001 — server must survive
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await self._send_json(writer, 500,
                                      {"error": f"internal: {error}"})
        finally:
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request_line(reader) -> tuple[str, str]:
        line = (await reader.readline()).decode("latin-1").strip()
        parts = line.split()
        if len(parts) < 2:
            raise ServiceError("malformed request line", status=400)
        return parts[0].upper(), parts[1]

    @staticmethod
    async def _read_headers(reader) -> dict[str, str]:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> None:
        if path == "/v1/health" and method == "GET":
            return await self._send_json(writer, 200, self.describe())
        if path == "/v1/metrics" and method == "GET":
            return await self._send_metrics(writer)
        if method != "POST":
            raise ServiceError(f"{method} not supported here", status=405)
        payload = self._parse_body(body)
        if path == "/v1/compile":
            return await self._handle_job("compile", payload, writer)
        if path == "/v1/simulate":
            return await self._handle_job("simulate", payload, writer)
        if path == "/v1/cache/stat":
            return await self._handle_cache_stat(payload, writer)
        if path == "/v1/shutdown":
            drain = bool(payload.get("drain", True))
            self._begin_shutdown(drain)
            return await self._send_json(
                writer, 200, {"ok": True, "draining": drain,
                              "in_flight": self._active})
        raise ServiceError(f"unknown path {path}", status=404)

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise ServiceError(f"request body is not JSON: {error}",
                               status=400) from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object",
                               status=400)
        return payload

    # ------------------------------------------------------------------
    # Job handling

    async def _handle_job(self, kind: str, payload: dict, writer) -> None:
        from repro.observe.tracing import span

        request = JobRequest.from_payload(payload, kind)  # 400 on bad input
        if self._draining:
            raise ServiceError("server is draining", status=503)
        if self._active >= self.config.max_queue:
            self.stats.rejected += 1
            self.metrics.counter("repro_requests_rejected_total").inc()
            return await self._send_json(
                writer, 429,
                {"error": f"admission queue full "
                          f"({self.config.max_queue} jobs in flight)",
                 "retry_after": RETRY_AFTER},
                retry_after=RETRY_AFTER)
        self._active += 1
        self.stats.received += 1
        self._counter += 1
        request_id = f"r{self._counter:06d}"
        started = time.monotonic()
        self.metrics.counter("repro_requests_total", kind=kind).inc()
        self.metrics.gauge("repro_requests_in_flight").inc()
        try:
            # The request root span: everything downstream — dedup
            # decision, batcher compile, scheduler sim attempt — parents
            # under it (ensure_future/to_thread snapshot the contextvar).
            with span(f"request:{request_id}", kind=kind,
                      request=request_id, service=self.config.name,
                      client=request.client or "anonymous"):
                self._send_stream_head(writer)
                await self._emit(writer, {
                    "event": EVENT_ACCEPTED, "request": request_id,
                    "kind": kind, "protocol": PROTOCOL_VERSION})
                key = request.compile_key(self.cache)
                if kind == "compile" and request.cache_only:
                    summary = {"key": key,
                               "cache": ("warm" if self.cache.contains(key)
                                         else "cold")}
                else:
                    summary = await self._ensure_compile(key, request,
                                                         request_id)
                await self._emit(writer,
                                 {"event": EVENT_COMPILE, **summary})
                if kind == "simulate":
                    row = await self._ensure_sim(key, request, request_id)
                    await self._emit(writer,
                                     {"event": EVENT_RESULT, **row})
                self.stats.completed += 1
                await self._emit(writer, {
                    "event": EVENT_DONE, "request": request_id,
                    "elapsed": round(time.monotonic() - started, 6)})
        except (ServiceError, Exception) as error:  # noqa: BLE001
            self.stats.failed += 1
            self.metrics.counter("repro_requests_failed_total").inc()
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await self._emit(writer, {
                    "event": EVENT_ERROR, "request": request_id,
                    "error": f"{type(error).__name__}: {error}"})
        finally:
            self._active -= 1
            self.metrics.gauge("repro_requests_in_flight").dec()
            self.metrics.histogram("repro_request_seconds").observe(
                time.monotonic() - started)

    # -- compile path ---------------------------------------------------

    async def _ensure_compile(self, key: str, request: JobRequest,
                              request_id: str) -> dict:
        """Artifact for ``key`` on disk + its compile summary."""
        from repro.observe.tracing import propagation_context

        inflight = self._inflight_compiles.get(key)
        if inflight is not None:
            # Coalesce onto the in-flight leader. shield(): this
            # follower disconnecting must not cancel shared work.
            self.stats.compile_deduped += 1
            self.metrics.counter("repro_compile_dedup_total",
                                 role="follower").inc()
            summary = dict(await asyncio.shield(inflight))
            summary["cache"] = "deduped"
            self._note_compile(request, request_id, "deduped")
            return summary
        if self.cache.contains(key):
            self.stats.cache_warm += 1
            self.metrics.counter("repro_cache_warm_total").inc()
            self._note_compile(request, request_id, "warm")
            return {"key": key, "cache": "warm", "entry": request.entry,
                    "opt_level": request.opt_level}
        # This request is the leader: everyone with the same key who
        # arrives before the batcher resolves the future rides along.
        # Provenance (tags + trace position) is captured here, in the
        # request's own context — the batcher task that executes the
        # compile has no request context of its own.
        self.metrics.counter("repro_compile_dedup_total",
                             role="leader").inc()
        future = self._loop.create_future()
        future.add_done_callback(_consume_exception)
        self._inflight_compiles[key] = future
        await self._compile_queue.put(
            (key, request, request_id, future,
             self._request_tags(request, request_id),
             propagation_context()))
        return await asyncio.shield(future)

    async def _batcher(self) -> None:
        """Drain the compile queue in small time-windowed batches."""
        while True:
            batch = [await self._compile_queue.get()]
            deadline = self._loop.time() + self.config.batch_window
            while len(batch) < self.config.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._compile_queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            self.stats.compile_batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch,
                                           len(batch))
            self.stats.batch_sizes.append(len(batch))
            self.metrics.counter("repro_compile_batches_total").inc()
            self.metrics.histogram("repro_compile_batch_size",
                                   buckets=(1, 2, 4, 8, 16, 32)).observe(
                len(batch))
            for entry in batch:
                asyncio.ensure_future(self._execute_compile(*entry))

    async def _execute_compile(self, key: str, request: JobRequest,
                               request_id: str, future, tags=None,
                               trace_ctx=None) -> None:
        """Run one leader compile on the pool; settle its future."""
        from concurrent.futures.process import BrokenProcessPool

        if tags is None:
            tags = self._request_tags(request, request_id)
        submit = lambda: self._pool.submit(  # noqa: E731
            jobs.compile_artifact, request.to_payload(),
            str(self.cache.root), self._session_spec(), tags, trace_ctx)
        try:
            try:
                summary = await asyncio.wrap_future(
                    await asyncio.to_thread(submit))
            except BrokenProcessPool:
                # A sibling's hard-timeout reap killed the pool under
                # us: infrastructure, not this job — one retry.
                self._pool.reset()
                summary = await asyncio.wrap_future(
                    await asyncio.to_thread(submit))
            self.stats.compiles_executed += 1
            self.metrics.counter("repro_compiles_executed_total").inc()
        except BaseException as error:
            self._inflight_compiles.pop(key, None)
            if not future.done():
                future.set_exception(
                    error if isinstance(error, Exception)
                    else ServiceError(f"compile aborted: {error}"))
            return
        self._inflight_compiles.pop(key, None)
        if not future.done():
            future.set_result(summary)

    # -- simulate path --------------------------------------------------

    async def _ensure_sim(self, compile_key: str, request: JobRequest,
                          request_id: str) -> dict:
        skey = request.simulate_key(compile_key)
        inflight = self._inflight_sims.get(skey)
        if inflight is not None:
            self.stats.sim_deduped += 1
            self.metrics.counter("repro_sim_dedup_total").inc()
            row = dict(await asyncio.shield(inflight))
            row["deduped"] = True
            self._note_sim(request, request_id, row)
            return row
        # Leader: the execution task is owned by the service, not this
        # connection — a disconnect cannot strand the followers.
        future = self._loop.create_future()
        future.add_done_callback(_consume_exception)
        self._inflight_sims[skey] = future
        asyncio.ensure_future(self._execute_sim(compile_key, skey,
                                                request, request_id,
                                                future))
        return dict(await asyncio.shield(future))

    async def _execute_sim(self, compile_key: str, skey: str,
                           request: JobRequest, request_id: str,
                           future) -> None:
        try:
            row, attempts = await asyncio.to_thread(
                self._run_sim, compile_key, skey, request, request_id)
            self.stats.sims_executed += 1
            self.stats.sim_retries += max(0, attempts - 1)
        except BaseException as error:
            self._inflight_sims.pop(skey, None)
            if not future.done():
                future.set_exception(
                    error if isinstance(error, Exception)
                    else ServiceError(f"simulation aborted: {error}"))
            return
        self._inflight_sims.pop(skey, None)
        if not future.done():
            future.set_result(row)

    def _run_sim(self, compile_key: str, skey: str, request: JobRequest,
                 request_id: str) -> tuple[dict, int]:
        """One simulation as a single-job DAG (runs in a worker thread).

        The scheduler brings the sweep policy with it — transient
        failures retried with the configured budget, ReproError and
        cooperative timeouts terminal, telemetry tagged per attempt.
        No journal: the service is stateless between requests (dedup
        against the artifact cache plays that role for compiles).
        """
        from repro.orchestrate.dag import JobDAG
        from repro.orchestrate.executors import InlineExecutor
        from repro.orchestrate.scheduler import Scheduler

        name = f"sim-{skey[:12]}"
        dag = JobDAG(f"service-{request_id}")
        dag.job(name, jobs.simulate_row, str(self.cache.root),
                compile_key, list(request.args), request.memsys,
                request.engine, request.event_limit, category="cell")
        executor = (self._pool if self.config.sim_executor == "process"
                    else InlineExecutor())
        scheduler = Scheduler(
            dag, executor=executor, retries=self.config.retries,
            wall_limit=request.wall_limit or self.config.wall_limit,
            tags=self._request_tags(request, request_id))
        result = scheduler.run(resume=False).results[name]
        if not result.ok:
            raise ServiceError(
                f"simulation {result.status} after {result.attempts} "
                f"attempt(s): {result.error}")
        return result.value, result.attempts

    # ------------------------------------------------------------------
    # Telemetry provenance

    def _request_tags(self, request: JobRequest, request_id: str) -> dict:
        from repro.observe.tracing import current_trace_id
        tags = {"service": self.config.name,
                "client": request.client or "anonymous",
                "request": request_id,
                "kind": request.kind}
        trace_id = current_trace_id()
        if trace_id is not None:
            # RunRecords and trace spans cross-reference by this key.
            tags["trace_id"] = trace_id
        return tags

    def _session_spec(self) -> dict | None:
        if self.session is None:
            return None
        return {"root": str(self.session.store.root),
                "session_id": self.session.session_id,
                "label": self.session.label,
                "record_compiles": self.session.record_compiles,
                "pid": os.getpid()}

    def _note_compile(self, request: JobRequest, request_id: str,
                      status: str) -> None:
        """Record a compile answered without executing one (warm disk
        hit or in-flight coalesce) — the request still leaves a record,
        but never a ``cache_status="miss"`` one."""
        if self.session is None:
            return
        from repro.observe.telemetry import RunRecord
        self.session.record(RunRecord(
            kind="compile", created_at=time.time(), entry=request.entry,
            tags=self._request_tags(request, request_id),
            compilation={"cache_status": status}))

    def _note_sim(self, request: JobRequest, request_id: str,
                  row: dict) -> None:
        """Record a simulation answered by coalescing onto a leader."""
        if self.session is None:
            return
        from repro.observe.telemetry import RunRecord
        self.session.record(RunRecord(
            kind="run", created_at=time.time(), entry=request.entry,
            tags={**self._request_tags(request, request_id),
                  "dedup": "in-flight"},
            memsys=request.memsys, args=list(request.args)))

    # ------------------------------------------------------------------
    # Cache stat + health

    async def _handle_cache_stat(self, payload: dict, writer) -> None:
        """Warmth probe: is this request's artifact on disk? Never
        compiles (the ``cache_only`` path all the way down)."""
        request = JobRequest.from_payload(payload, "compile")
        key = request.compile_key(self.cache)
        await self._send_json(writer, 200, {
            "key": key,
            "warm": self.cache.contains(key),
            "cache_root": str(self.cache.root),
        })

    def describe(self) -> dict:
        """The ``/v1/health`` body: identity, load, and counters."""
        return {
            "service": self.config.name,
            "protocol": PROTOCOL_VERSION,
            "draining": self._draining,
            "in_flight": self._active,
            "max_queue": self.config.max_queue,
            "cache_root": str(self.cache.root),
            "session": (self.session.session_id
                        if self.session is not None else None),
            "stats": self.stats.to_dict(),
        }

    # ------------------------------------------------------------------
    # Wire helpers

    def _send_stream_head(self, writer) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")

    async def _emit(self, writer, event: dict) -> None:
        writer.write(json.dumps(event).encode() + b"\n")
        await writer.drain()

    async def _send_json(self, writer, status: int, payload: dict,
                         retry_after: float | None = None) -> None:
        body = json.dumps(payload).encode()
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n")
        if retry_after is not None:
            head += f"Retry-After: {retry_after}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()

    async def _send_metrics(self, writer) -> None:
        """``GET /v1/metrics``: the live registry as Prometheus text."""
        from repro.observe.metrics import (
            PROMETHEUS_CONTENT_TYPE,
            render_prometheus,
        )
        text = render_prometheus(self.metrics.snapshot(
            tags={"service": self.config.name}))
        body = text.encode()
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: {PROMETHEUS_CONTENT_TYPE}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n")
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
