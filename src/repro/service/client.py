"""The blocking client for the compile service (``repro submit``).

Stdlib sockets, nothing else: one TCP connection per job, a JSON body
out, an NDJSON event stream back read line-by-line until EOF. The
stream contract makes failure detection trivial — a healthy job always
ends with a ``done`` event, so a stream that ends without one (server
killed mid-request, network cut) surfaces as a clean
:class:`~repro.service.protocol.ServiceError` instead of a half-parsed
mystery.

Typical use::

    from repro.service import ServiceClient

    client = ServiceClient(port=8577)
    outcome = client.simulate(source, entry="kernel", args=[20])
    print(outcome.value, outcome.result["cycles"])

Backpressure (HTTP 429) raises by default; ``submit(..., wait=True)``
sleeps the server's ``Retry-After`` hint and retries instead, which is
what a load generator wants.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field

from repro.service.protocol import (
    DEFAULT_PORT,
    EVENT_COMPILE,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_RESULT,
    JobRequest,
    ServiceError,
)


@dataclass
class JobOutcome:
    """Everything one job's event stream said."""

    kind: str
    request_id: str | None = None
    compile: dict | None = None      # the `compile` event payload
    result: dict | None = None       # the `result` event payload
    elapsed: float | None = None     # server-side, from `done`
    events: list = field(default_factory=list)

    @property
    def value(self):
        """The simulated return value (None for compile-only jobs)."""
        return (self.result or {}).get("return_value")

    @property
    def key(self) -> str | None:
        """The artifact's content address in the shared cache."""
        return (self.compile or {}).get("key")

    @property
    def cache(self) -> str | None:
        """How the compile was satisfied: miss/hit/warm/deduped/cold."""
        return (self.compile or {}).get("cache")


class ServiceClient:
    """Blocking HTTP/NDJSON client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 120.0, client_id: str | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Stamped into every request (the ``client`` provenance tag).
        self.client_id = client_id

    # ------------------------------------------------------------------
    # High-level verbs

    def compile(self, source: str, entry: str, *, wait: bool = False,
                **knobs) -> JobOutcome:
        """Ensure ``(source, entry, knobs)`` is compiled server-side."""
        return self.submit(self._request("compile", source, entry, knobs),
                           wait=wait)

    def simulate(self, source: str, entry: str,
                 args: list[int] | tuple = (), *, wait: bool = False,
                 **knobs) -> JobOutcome:
        """Compile (or reuse) and execute spatially; returns the row."""
        knobs = dict(knobs, args=list(args))
        return self.submit(self._request("simulate", source, entry, knobs),
                           wait=wait)

    def submit(self, request: JobRequest, *, wait: bool = False,
               max_wait: float = 60.0) -> JobOutcome:
        """Run one validated request to completion.

        ``wait=True`` turns 429 backpressure into sleep-and-retry
        (bounded by ``max_wait`` of accumulated sleeping); otherwise the
        429 surfaces as a :class:`ServiceError` with ``status`` and
        ``retry_after`` set.
        """
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self._run(request)
            except ServiceError as error:
                if not wait or error.status != 429 \
                        or time.monotonic() >= deadline:
                    raise
                time.sleep(error.retry_after or 0.05)

    def events(self, request: JobRequest):
        """Yield the raw event stream of one job (advanced use)."""
        yield from self._stream(f"/v1/{request.kind}",
                                self._payload(request))

    # ------------------------------------------------------------------
    # Control-plane verbs

    def health(self) -> dict:
        """The server's ``/v1/health`` body (stats, load, identity)."""
        return self._request_json("GET", "/v1/health", None)

    def cache_stat(self, source: str, entry: str, **knobs) -> dict:
        """Probe artifact warmth without compiling anything."""
        request = self._request("compile", source, entry, knobs)
        return self._request_json("POST", "/v1/cache/stat",
                                  self._payload(request))

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the server to stop (draining in-flight jobs first)."""
        return self._request_json("POST", "/v1/shutdown", {"drain": drain})

    def metrics(self) -> tuple[str, str]:
        """Scrape ``/v1/metrics``: ``(exposition_text, content_type)``.

        Parse the text with
        :func:`repro.observe.metrics.parse_prometheus` (or any real
        Prometheus scraper — it is standard exposition format 0.0.4).
        """
        sock = self._connect()
        try:
            self._send(sock, "GET", "/v1/metrics", None)
            reader = sock.makefile("rb")
            status, headers = self._read_head(reader)
            if status != 200:
                self._raise_error(status, headers, reader)
            body = self._read_body(headers, reader)
            return body.decode(), headers.get("content-type", "")
        except OSError as error:
            raise ServiceError(f"connection to {self.host}:{self.port} "
                               f"failed: {error}") from None
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # Internals

    def _request(self, kind: str, source: str, entry: str,
                 knobs: dict) -> JobRequest:
        payload = {"source": source, "entry": entry,
                   "client": self.client_id, **knobs}
        return JobRequest.from_payload(payload, kind)

    @staticmethod
    def _payload(request: JobRequest) -> dict:
        return {key: value for key, value in request.to_payload().items()
                if value not in (None, [], {}, ())}

    def _run(self, request: JobRequest) -> JobOutcome:
        outcome = JobOutcome(kind=request.kind)
        done = False
        for event in self._stream(f"/v1/{request.kind}",
                                  self._payload(request)):
            outcome.events.append(event)
            name = event.get("event")
            if name == EVENT_ERROR:
                raise ServiceError(
                    f"job failed server-side: {event.get('error')}")
            if outcome.request_id is None and "request" in event:
                outcome.request_id = event["request"]
            if name == EVENT_COMPILE:
                outcome.compile = event
            elif name == EVENT_RESULT:
                outcome.result = event
            elif name == EVENT_DONE:
                outcome.elapsed = event.get("elapsed")
                done = True
        if not done:
            raise ServiceError(
                f"stream from {self.host}:{self.port} ended before the "
                f"job completed (server killed or connection cut after "
                f"{len(outcome.events)} event(s))")
        return outcome

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: "
                f"{error}") from None

    def _send(self, sock: socket.socket, method: str, path: str,
              payload: dict | None) -> None:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        sock.sendall(head.encode() + body)

    def _stream(self, path: str, payload: dict):
        """POST and yield NDJSON events until EOF."""
        sock = self._connect()
        try:
            self._send(sock, "POST", path, payload)
            reader = sock.makefile("rb")
            status, headers = self._read_head(reader)
            if status != 200:
                self._raise_error(status, headers, reader)
            for line in reader:
                line = line.strip()
                if line:
                    yield json.loads(line)
        except OSError as error:
            raise ServiceError(f"connection to {self.host}:{self.port} "
                               f"failed mid-stream: {error}") from None
        finally:
            sock.close()

    def _request_json(self, method: str, path: str,
                      payload: dict | None) -> dict:
        sock = self._connect()
        try:
            self._send(sock, method, path, payload)
            reader = sock.makefile("rb")
            status, headers = self._read_head(reader)
            if status != 200:
                self._raise_error(status, headers, reader)
            return json.loads(self._read_body(headers, reader) or b"{}")
        except OSError as error:
            raise ServiceError(f"connection to {self.host}:{self.port} "
                               f"failed: {error}") from None
        finally:
            sock.close()

    @staticmethod
    def _read_head(reader) -> tuple[int, dict]:
        line = reader.readline().decode("latin-1").strip()
        parts = line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed response: {line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                return status, headers
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    def _read_body(headers: dict, reader) -> bytes:
        length = headers.get("content-length")
        if length is not None:
            return reader.read(int(length))
        return reader.read()

    def _raise_error(self, status: int, headers: dict, reader) -> None:
        body = self._read_body(headers, reader)
        try:
            message = json.loads(body).get("error") or body.decode()
        except ValueError:
            message = body.decode("latin-1", "replace") or f"HTTP {status}"
        retry_after = headers.get("retry-after")
        raise ServiceError(
            f"server refused the request ({status}): {message}",
            status=status,
            retry_after=float(retry_after) if retry_after else None)
