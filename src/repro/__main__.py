"""Command-line driver: compile and run a MiniC file spatially.

Usage::

    python -m repro program.c --entry kernel --args 10 3 --opt full
    python -m repro program.c --entry kernel --dump-graph out.dot
    python -m repro program.c --entry kernel --compare   # vs the oracle
    python -m repro program.c --entry kernel --report    # pass telemetry
    python -m repro program.c --entry kernel --verify final --cache
    python -m repro program.c --entry kernel --fault-seed 7   # one perturbed run
    python -m repro program.c --entry kernel --differential 5 # N-schedule check
    python -m repro program.c --entry kernel --diagnose --postmortem wedge.json
    python -m repro program.c --entry kernel --profile --critical-path
    python -m repro program.c --entry kernel --trace-out run.json --trace-out run.vcd

Prints the return value, cycle count, and dynamic operation statistics for
the selected memory system; ``--report`` adds the per-stage/per-pass
compilation report (wall time, change counts, IR-size deltas).
``--diagnose`` renders deadlock/livelock forensics (the wait-for analysis
over the Pegasus graph) when a simulation wedges, and ``--postmortem``
dumps the structured report plus a graph slice as JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import DeadlockError, EventLimitError, ReproError
from repro.pegasus.printer import dump_dot, dump_text
from repro.pipeline import (
    VERIFY_POLICIES,
    CompilationCache,
    CompilerDriver,
    PipelineConfig,
)
from repro.sim.memsys import (
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_MEMORY,
)

MEMORY_SYSTEMS = {
    "perfect": PERFECT_MEMORY,
    "realistic": REALISTIC_MEMORY,
    "realistic-1port": REALISTIC_MEMORY.with_ports(1),
    "realistic-4port": REALISTIC_MEMORY.with_ports(4),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile MiniC to a spatial dataflow circuit and run it.",
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument("--args", nargs="*", type=int, default=[],
                        help="integer arguments for the entry function")
    parser.add_argument("--opt", default="full",
                        choices=["none", "basic", "medium", "full"])
    parser.add_argument("--verify", default="every-pass",
                        choices=list(VERIFY_POLICIES),
                        help="graph verification policy (default: every-pass)")
    parser.add_argument("--unroll-limit", type=int, default=0,
                        help="fully unroll counted loops up to this many "
                             "iterations (0/1 = off)")
    parser.add_argument("--memory", default="perfect",
                        choices=sorted(MEMORY_SYSTEMS))
    parser.add_argument("--engine", default=None,
                        choices=["compiled", "interp"],
                        help="dataflow executor: the plan-compiled engine "
                             "or the reference interpreter (default: "
                             "$REPRO_SIM_ENGINE, else compiled; results "
                             "are bit-identical)")
    parser.add_argument("--compare", action="store_true",
                        help="also run the sequential oracle and check")
    parser.add_argument("--dump-graph", metavar="FILE",
                        help="write the Pegasus graph (.dot or .txt)")
    parser.add_argument("--stats", action="store_true",
                        help="print static graph statistics")
    parser.add_argument("--report", action="store_true",
                        help="print the compilation report (per-stage and "
                             "per-pass wall time, changes, IR-size deltas)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the execution: per-opcode/per-node "
                             "firing counts and occupancy, LSQ and cache "
                             "breakdowns, critical-path attribution")
    parser.add_argument("--critical-path", action="store_true",
                        help="print only the dynamic critical-path "
                             "attribution (implied by --profile)")
    parser.add_argument("--trace-out", action="append", metavar="FILE",
                        default=[],
                        help="write an execution trace: .json -> Chrome/"
                             "Perfetto trace events, .vcd -> GTKWave "
                             "waveforms, .jsonl -> metric lines "
                             "(repeatable)")
    parser.add_argument("--cache", action="store_true",
                        help="use the persistent compilation cache "
                             "($REPRO_CACHE_DIR or ~/.cache/repro-pegasus)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="SEED",
                        help="run under a seeded fault plan (latency "
                             "jitter/spikes, LSQ stalls, bounded event "
                             "reordering); timing-only, semantics must "
                             "not change")
    parser.add_argument("--differential", type=int, default=0, metavar="N",
                        help="run N perturbed schedules and diff each "
                             "against the sequential oracle (exit 1 on "
                             "any mismatch)")
    parser.add_argument("--wall-limit", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per simulation "
                             "(cooperative; SimulationTimeout on overrun)")
    parser.add_argument("--diagnose", action="store_true",
                        help="on deadlock or event-limit overrun, print "
                             "the wait-for forensics report")
    parser.add_argument("--postmortem", metavar="FILE",
                        help="with --diagnose: also dump the structured "
                             "report + graph slice as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        with open(options.source) as handle:
            source = handle.read()
        config = PipelineConfig.make(opt_level=options.opt,
                                     verify=options.verify,
                                     unroll_limit=options.unroll_limit,
                                     filename=options.source)
        cache = CompilationCache() if options.cache else None
        program = CompilerDriver(config, cache=cache).compile(
            source, options.entry)
        if options.report and program.report is not None:
            print(program.report.render())
            print()
        if options.dump_graph:
            dump = (dump_dot(program.graph)
                    if options.dump_graph.endswith(".dot")
                    else dump_text(program.graph))
            with open(options.dump_graph, "w") as handle:
                handle.write(dump + "\n")
            print(f"graph written to {options.dump_graph}")
        config = MEMORY_SYSTEMS[options.memory]
        if options.differential:
            result = program.check_timing_robustness(
                list(options.args), seeds=options.differential,
                memsys=config if not config.perfect else None,
                engine=options.engine)
            print(result.summary())
            return 0 if result.ok else 1
        faults = None
        if options.fault_seed is not None:
            from repro.resilience.faults import SHAKE_EVERYTHING
            faults = SHAKE_EVERYTHING.with_seed(options.fault_seed)
            print(f"faults  : {faults.describe()}")
        observation = None
        if options.profile or options.critical_path or options.trace_out \
                or options.diagnose:
            from repro.observe import Observation
            observation = Observation(trace=bool(options.trace_out),
                                      history=256 if options.diagnose else 0)
        result = program.simulate(list(options.args),
                                  memsys=MemorySystem(config),
                                  faults=faults,
                                  wall_limit=options.wall_limit,
                                  profile=observation or False,
                                  engine=options.engine)
        print(f"result  : {result.return_value}")
        print(f"cycles  : {result.cycles}  ({config.name} memory)")
        print(f"memops  : {result.loads} loads, {result.stores} stores, "
              f"{result.skipped_memops} predicated off")
        if observation is not None:
            _observe_outputs(observation, program, result, options)
        if options.stats:
            for key, value in program.static_counts().items():
                print(f"  {key:17s} {value}")
        if options.compare:
            oracle = program.run_sequential(list(options.args))
            status = "MATCH" if oracle.return_value == result.return_value \
                else "MISMATCH"
            print(f"oracle  : {oracle.return_value}  [{status}]")
            if status == "MISMATCH":
                return 1
        return 0
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        if options.diagnose:
            _diagnose(error, options.postmortem)
        return 2


def _observe_outputs(observation, program, result, options) -> None:
    """Print/export the requested observability artifacts."""
    from repro.observe import export_jsonl
    report = result.profile
    if options.profile:
        print()
        print(report.render())
    elif options.critical_path and report.critical_path is not None:
        print()
        print(report.critical_path.render())
    for path in options.trace_out:
        if path.endswith(".vcd"):
            signals = observation.export_vcd(program.graph, path)
            print(f"VCD waveforms ({signals} signals) written to {path}")
        elif path.endswith(".jsonl"):
            lines = export_jsonl(report, path)
            print(f"{lines} metric lines written to {path}")
        else:
            observation.export_trace(program.graph, path)
            print(f"Perfetto trace written to {path} "
                  f"(open at https://ui.perfetto.dev)")


def _diagnose(error: ReproError, postmortem: str | None) -> None:
    """Render deadlock/livelock forensics for a wedged simulation."""
    report = getattr(error, "report", None)
    if isinstance(error, DeadlockError) and report is not None:
        print()
        print(report.render())
        if postmortem:
            from repro.resilience.forensics import dump_postmortem
            dump_postmortem(report, postmortem)
            print(f"post-mortem written to {postmortem}")
    elif isinstance(error, EventLimitError) and error.hot_nodes:
        print()
        print("event-limit forensics (livelock vs long run):")
        for label, count in error.hot_nodes:
            print(f"  {label} fired {count} times")


if __name__ == "__main__":
    sys.exit(main())
