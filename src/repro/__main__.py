"""Command-line driver: compile and run a MiniC file spatially.

Usage::

    python -m repro program.c --entry kernel --args 10 3 --opt full
    python -m repro program.c --entry kernel --dump-graph out.dot
    python -m repro program.c --entry kernel --compare   # vs the oracle
    python -m repro program.c --entry kernel --report    # pass telemetry
    python -m repro program.c --entry kernel --verify final --cache
    python -m repro program.c --entry kernel --fault-seed 7   # one perturbed run
    python -m repro program.c --entry kernel --differential 5 # N-schedule check
    python -m repro program.c --entry kernel --diagnose --postmortem wedge.json
    python -m repro program.c --entry kernel --profile --critical-path
    python -m repro program.c --entry kernel --trace-out run.json --trace-out run.vcd
    python -m repro program.c --entry kernel --record   # persist telemetry

Prints the return value, cycle count, and dynamic operation statistics for
the selected memory system; ``--report`` adds the per-stage/per-pass
compilation report (wall time, change counts, IR-size deltas).
``--diagnose`` renders deadlock/livelock forensics (the wait-for analysis
over the Pegasus graph) when a simulation wedges, and ``--postmortem``
dumps the structured report plus a graph slice as JSON. ``--record``
persists the compile and the run as schema-versioned
:class:`~repro.observe.telemetry.RunRecord` lines in the telemetry store
(``$REPRO_TELEMETRY_DIR`` or ``.repro/telemetry``).

The telemetry store has its own subcommand surface (also installed as
``repro-telemetry``)::

    python -m repro telemetry list
    python -m repro telemetry show <run-id-prefix>
    python -m repro telemetry compare <baseline> <current>
    python -m repro telemetry gc --keep-sessions 20
    python -m repro telemetry watchdog --baselines benchmarks/results/baselines
    python -m repro telemetry baseline --out benchmarks/results/baselines

``compare`` accepts run ids, session ids, or baseline files/directories
on either side and exits nonzero on a regression verdict; ``watchdog``
replays a committed baseline set against the current tree.

Figure sweeps run as explicit job DAGs with retry and resume (also
installed as ``repro-sweep``; see :mod:`repro.orchestrate.sweeps`)::

    python -m repro sweep list
    python -m repro sweep describe fig19 --kernels li
    python -m repro sweep run fig19 --executor process --retries 2
    python -m repro sweep resume fig19
    python -m repro sweep status fig19 --json
    python -m repro sweep status fig19 --watch

Distributed traces (``--trace`` on ``sweep run`` and ``serve``) merge
per-process span shards into one Perfetto timeline::

    python -m repro trace list
    python -m repro trace show fig19
    python -m repro trace export fig19 --out fig19-trace.json

Compilation-as-a-service (also installed as ``repro-serve``; see
:mod:`repro.service`)::

    python -m repro serve --port 8577 --workers 4
    python -m repro submit program.c --entry kernel --args 20
    python -m repro cache stat program.c --entry kernel --opt full

``serve`` runs the async compile/simulate server (request dedup against
the shared artifact store, compile batching, 429 backpressure, drained
shutdown); ``submit`` streams one job's NDJSON events from a running
server; ``cache stat`` probes artifact warmth without compiling.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.errors import DeadlockError, EventLimitError, ReproError
from repro.pegasus.printer import dump_dot, dump_text
from repro.pipeline import (
    VERIFY_POLICIES,
    CompilationCache,
    CompilerDriver,
    PipelineConfig,
)
from repro.sim.memsys import MemorySystem, NAMED_SYSTEMS

MEMORY_SYSTEMS = NAMED_SYSTEMS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile MiniC to a spatial dataflow circuit and run it.",
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument("--args", nargs="*", type=int, default=[],
                        help="integer arguments for the entry function")
    parser.add_argument("--opt", default="full",
                        choices=["none", "basic", "medium", "full"])
    parser.add_argument("--verify", default="every-pass",
                        choices=list(VERIFY_POLICIES),
                        help="graph verification policy (default: every-pass)")
    parser.add_argument("--unroll-limit", type=int, default=0,
                        help="fully unroll counted loops up to this many "
                             "iterations (0/1 = off)")
    parser.add_argument("--memory", default="perfect",
                        choices=sorted(MEMORY_SYSTEMS))
    parser.add_argument("--engine", default=None,
                        choices=["compiled", "codegen", "interp"],
                        help="dataflow executor: the plan-compiled engine, "
                             "the per-plan code generator, or the "
                             "reference interpreter (default: "
                             "$REPRO_SIM_ENGINE, else compiled; results "
                             "are bit-identical)")
    parser.add_argument("--compare", action="store_true",
                        help="also run the sequential oracle and check")
    parser.add_argument("--dump-graph", metavar="FILE",
                        help="write the Pegasus graph (.dot or .txt)")
    parser.add_argument("--stats", action="store_true",
                        help="print static graph statistics")
    parser.add_argument("--report", action="store_true",
                        help="print the compilation report (per-stage and "
                             "per-pass wall time, changes, IR-size deltas)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the execution: per-opcode/per-node "
                             "firing counts and occupancy, LSQ and cache "
                             "breakdowns, critical-path attribution")
    parser.add_argument("--critical-path", action="store_true",
                        help="print only the dynamic critical-path "
                             "attribution (implied by --profile)")
    parser.add_argument("--trace-out", action="append", metavar="FILE",
                        default=[],
                        help="write an execution trace: .json -> Chrome/"
                             "Perfetto trace events, .vcd -> GTKWave "
                             "waveforms, .jsonl -> metric lines "
                             "(repeatable)")
    parser.add_argument("--cache", action="store_true",
                        help="use the persistent compilation cache "
                             "($REPRO_CACHE_DIR or ~/.cache/repro-pegasus)")
    parser.add_argument("--record", action="store_true",
                        help="record the compile and the run into the "
                             "telemetry store ($REPRO_TELEMETRY_DIR or "
                             ".repro/telemetry); inspect with "
                             "'repro-telemetry list/show/compare'")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="SEED",
                        help="run under a seeded fault plan (latency "
                             "jitter/spikes, LSQ stalls, bounded event "
                             "reordering); timing-only, semantics must "
                             "not change")
    parser.add_argument("--differential", type=int, default=0, metavar="N",
                        help="run N perturbed schedules and diff each "
                             "against the sequential oracle (exit 1 on "
                             "any mismatch)")
    parser.add_argument("--wall-limit", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per simulation "
                             "(cooperative; SimulationTimeout on overrun)")
    parser.add_argument("--diagnose", action="store_true",
                        help="on deadlock or event-limit overrun, print "
                             "the wait-for forensics report")
    parser.add_argument("--postmortem", metavar="FILE",
                        help="with --diagnose: also dump the structured "
                             "report + graph slice as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "telemetry":
        return telemetry_main(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.orchestrate.sweeps import sweep_main
        return sweep_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.observe.tracing import trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from repro.service.cli import submit_main
        return submit_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.service.cli import cache_main
        return cache_main(argv[1:])
    options = build_parser().parse_args(argv)
    try:
        with open(options.source) as handle:
            source = handle.read()
        session = nullcontext()
        if options.record:
            from repro.observe.telemetry import TelemetrySession
            session = TelemetrySession(label=Path(options.source).stem)
        with session as active:
            result = _compile_and_run(options, source)
        if options.record:
            print(f"telemetry: {len(active.run_ids)} record(s) in session "
                  f"{active.session_id} -> {active.store.root}")
        return result
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        if options.diagnose:
            _diagnose(error, options.postmortem)
        return 2


def _compile_and_run(options, source: str) -> int:
    """The compile-and-simulate body of the main command; exit status."""
    config = PipelineConfig.make(opt_level=options.opt,
                                 verify=options.verify,
                                 unroll_limit=options.unroll_limit,
                                 filename=options.source)
    cache = CompilationCache() if options.cache else None
    program = CompilerDriver(config, cache=cache).compile(
        source, options.entry)
    if options.report and program.report is not None:
        print(program.report.render())
        print()
    if options.dump_graph:
        dump = (dump_dot(program.graph)
                if options.dump_graph.endswith(".dot")
                else dump_text(program.graph))
        with open(options.dump_graph, "w") as handle:
            handle.write(dump + "\n")
        print(f"graph written to {options.dump_graph}")
    config = MEMORY_SYSTEMS[options.memory]
    if options.differential:
        result = program.check_timing_robustness(
            list(options.args), seeds=options.differential,
            memsys=config if not config.perfect else None,
            engine=options.engine)
        print(result.summary())
        return 0 if result.ok else 1
    faults = None
    if options.fault_seed is not None:
        from repro.resilience.faults import SHAKE_EVERYTHING
        faults = SHAKE_EVERYTHING.with_seed(options.fault_seed)
        print(f"faults  : {faults.describe()}")
    observation = None
    if options.profile or options.critical_path or options.trace_out \
            or options.diagnose:
        from repro.observe import Observation
        observation = Observation(trace=bool(options.trace_out),
                                  history=256 if options.diagnose else 0)
    result = program.simulate(list(options.args),
                              memsys=MemorySystem(config),
                              faults=faults,
                              wall_limit=options.wall_limit,
                              profile=observation or False,
                              engine=options.engine)
    print(f"result  : {result.return_value}")
    print(f"cycles  : {result.cycles}  ({config.name} memory)")
    print(f"memops  : {result.loads} loads, {result.stores} stores, "
          f"{result.skipped_memops} predicated off")
    if observation is not None:
        _observe_outputs(observation, program, result, options)
    if options.stats:
        for key, value in program.static_counts().items():
            print(f"  {key:17s} {value}")
    if options.compare:
        oracle = program.run_sequential(list(options.args))
        status = "MATCH" if oracle.return_value == result.return_value \
            else "MISMATCH"
        print(f"oracle  : {oracle.return_value}  [{status}]")
        if status == "MISMATCH":
            return 1
    return 0


def _observe_outputs(observation, program, result, options) -> None:
    """Print/export the requested observability artifacts."""
    from repro.observe import export_jsonl
    report = result.profile
    if options.profile:
        print()
        print(report.render())
    elif options.critical_path and report.critical_path is not None:
        print()
        print(report.critical_path.render())
    for path in options.trace_out:
        if path.endswith(".vcd"):
            signals = observation.export_vcd(program.graph, path)
            print(f"VCD waveforms ({signals} signals) written to {path}")
        elif path.endswith(".jsonl"):
            lines = export_jsonl(report, path)
            print(f"{lines} metric lines written to {path}")
        else:
            observation.export_trace(program.graph, path)
            print(f"Perfetto trace written to {path} "
                  f"(open at https://ui.perfetto.dev)")


def _diagnose(error: ReproError, postmortem: str | None) -> None:
    """Render deadlock/livelock forensics for a wedged simulation."""
    report = getattr(error, "report", None)
    if isinstance(error, DeadlockError) and report is not None:
        print()
        print(report.render())
        if postmortem:
            from repro.resilience.forensics import dump_postmortem
            dump_postmortem(report, postmortem)
            print(f"post-mortem written to {postmortem}")
    elif isinstance(error, EventLimitError) and error.hot_nodes:
        print()
        print("event-limit forensics (livelock vs long run):")
        for label, count in error.hot_nodes:
            print(f"  {label} fired {count} times")


# ----------------------------------------------------------------------
# The telemetry-store surface: repro-telemetry / `python -m repro telemetry`


def build_telemetry_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Inspect, compare, and police the telemetry store.",
    )
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store root (default: $REPRO_TELEMETRY_DIR "
                             "or .repro/telemetry)")
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser(
        "list", help="recorded runs, newest last")
    list_cmd.add_argument("--session", default=None,
                          help="only this session id")
    list_cmd.add_argument("--kind", default=None,
                          choices=["run", "compile"])
    list_cmd.add_argument("--limit", type=int, default=40,
                          help="show at most N newest records (0 = all)")
    list_cmd.add_argument("--sessions", action="store_true",
                          help="summarize sessions instead of records")

    show_cmd = commands.add_parser(
        "show", help="one full record (unique run-id prefixes accepted)")
    show_cmd.add_argument("run_id")
    show_cmd.add_argument("--json", action="store_true",
                          help="dump the raw record payload")

    compare_cmd = commands.add_parser(
        "compare", help="structured delta between two runs or run-sets; "
                        "exits 1 on a regression verdict")
    compare_cmd.add_argument("baseline",
                             help="run id, session id, or baseline "
                                  "file/directory")
    compare_cmd.add_argument("current", help="same forms as baseline")
    _threshold_arguments(compare_cmd)

    gc_cmd = commands.add_parser(
        "gc", help="drop old segments and rewrite the index")
    gc_cmd.add_argument("--keep-sessions", type=int, default=None,
                        metavar="N", help="keep the N most recent sessions")
    gc_cmd.add_argument("--max-age-days", type=float, default=None,
                        metavar="D", help="keep records younger than D days")
    gc_cmd.add_argument("--dry-run", action="store_true")

    watchdog_cmd = commands.add_parser(
        "watchdog", help="replay a committed baseline set against the "
                         "current tree; exits 1 on regression")
    watchdog_cmd.add_argument("--baselines", required=True, metavar="DIR",
                              help="baseline file or directory "
                                   "(see 'baseline')")
    watchdog_cmd.add_argument("--wall-limit", type=float, default=None,
                              metavar="SECONDS",
                              help="per-simulation wall-clock budget")
    watchdog_cmd.add_argument("--record", action="store_true",
                              help="also persist the replayed runs")
    _threshold_arguments(watchdog_cmd)

    baseline_cmd = commands.add_parser(
        "baseline", help="run kernels fresh and write baseline files")
    baseline_cmd.add_argument("--out", required=True, metavar="DIR")
    baseline_cmd.add_argument("--kernels", default="adpcm_e,li",
                              help="comma-separated kernel names")
    baseline_cmd.add_argument("--levels", default="none,full",
                              help="comma-separated optimization levels")
    baseline_cmd.add_argument("--memory", default="perfect,realistic-2port",
                              help="comma-separated memory-system names")
    return parser


def _threshold_arguments(parser) -> None:
    parser.add_argument("--cycle-pct", type=float, default=None,
                        help="relative cycle growth that fails "
                             "(default 0.05)")
    parser.add_argument("--cycle-floor", type=int, default=None,
                        help="absolute cycle noise floor (default 16)")
    parser.add_argument("--hit-rate-drop", type=float, default=None,
                        help="cache hit-rate drop that fails "
                             "(default 0.02)")


def _thresholds(options):
    from repro.observe.diff import Thresholds
    defaults = Thresholds()
    return Thresholds(
        cycle_pct=(defaults.cycle_pct if options.cycle_pct is None
                   else options.cycle_pct),
        cycle_floor=(defaults.cycle_floor if options.cycle_floor is None
                     else options.cycle_floor),
        hit_rate_drop=(defaults.hit_rate_drop
                       if options.hit_rate_drop is None
                       else options.hit_rate_drop),
    )


def _resolve_run_set(store, spec: str):
    """A compare operand: baseline path, session id, or run-id prefix."""
    from repro.observe.diff import load_baselines
    if Path(spec).exists():
        return load_baselines(spec)
    if spec in store.sessions():
        return store.records(session=spec)
    return [store.get(spec)]


def telemetry_main(argv: list[str] | None = None) -> int:
    from repro.observe.store import TelemetryStore
    options = build_telemetry_parser().parse_args(argv)
    store = TelemetryStore(options.store)
    try:
        return _telemetry_command(options, store)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _telemetry_command(options, store) -> int:
    if options.command == "list":
        return _telemetry_list(options, store)
    if options.command == "show":
        record = store.get(options.run_id)
        if options.json:
            import json
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        else:
            _print_record(record)
        return 0
    if options.command == "compare":
        from repro.observe.diff import compare
        report = compare(_resolve_run_set(store, options.baseline),
                         _resolve_run_set(store, options.current),
                         _thresholds(options))
        print(report.render())
        return 0 if report.ok else 1
    if options.command == "gc":
        removed = store.gc(keep_sessions=options.keep_sessions,
                           max_age_days=options.max_age_days,
                           dry_run=options.dry_run)
        verb = "would remove" if options.dry_run else "removed"
        print(f"{verb} {len(removed)} segment(s)"
              + (": " + ", ".join(removed) if removed else ""))
        return 0
    if options.command == "watchdog":
        return _telemetry_watchdog(options, store)
    if options.command == "baseline":
        from repro.observe.diff import make_baselines, save_baselines
        records = make_baselines(
            [name for name in options.kernels.split(",") if name],
            levels=[lvl for lvl in options.levels.split(",") if lvl],
            memory_systems=[MEMORY_SYSTEMS[name] for name
                            in options.memory.split(",") if name],
        )
        written = save_baselines(records, options.out)
        for path in written:
            print(f"baseline written: {path}")
        return 0
    raise AssertionError(f"unhandled command {options.command!r}")


def _print_record(record) -> None:
    print(f"run {record.run_id}")
    print(f"  kind      : {record.kind} (schema v{record.schema})")
    print(f"  what      : {record.describe()}")
    print(f"  session   : {record.session or '-'}"
          + (f"  label={record.label}" if record.label else ""))
    if record.tags:
        print("  tags      : "
              + " ".join(f"{k}={v}" for k, v in sorted(record.tags.items())))
    if record.source_sha:
        print(f"  source    : sha256:{record.source_sha[:16]}")
    if record.config:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(record.config.items())
                         if k not in ("filename",) and v not in (None, [], 0))
        print(f"  config    : {knobs}")
    if record.engine:
        print(f"  engine    : {record.engine}")
    if record.faults:
        print(f"  faults    : {record.faults}")
    if record.result:
        r = record.result
        print(f"  result    : value={r.get('return_value')} "
              f"cycles={r.get('cycles')} fired={r.get('fired')} "
              f"loads={r.get('loads')} stores={r.get('stores')}")
        hit_rate = record.cache_hit_rate()
        if hit_rate is not None:
            print(f"  cache     : {hit_rate:.3f} L1+L2 hit rate")
    shares = record.attribution_shares()
    if shares:
        print("  crit path : " + " ".join(
            f"{category}={share:.1%}"
            for category, share in sorted(shares.items())))
    if record.compilation:
        comp = record.compilation
        print(f"  compile   : {comp['total_wall_time'] * 1e3:.1f} ms, "
              f"{len(comp['passes'])} pass runs, "
              f"cache={comp['cache_status']}")


def _telemetry_list(options, store) -> int:
    from repro.utils.tables import TextTable
    if options.sessions:
        table = TextTable(["Session", "records"],
                          title=f"telemetry sessions in {store.root}")
        for session, count in store.sessions().items():
            table.add_row(session, count)
        print(table.render())
        return 0
    entries = store.index()
    if options.session is not None:
        entries = [e for e in entries
                   if e.get("session") == options.session]
    if options.kind is not None:
        entries = [e for e in entries if e.get("kind") == options.kind]
    if options.limit:
        entries = entries[-options.limit:]
    table = TextTable(
        ["Run", "kind", "kernel", "opt", "memsys", "cycles", "session"],
        title=f"telemetry store {store.root}",
    )
    for entry in entries:
        table.add_row(entry["run_id"][:12], entry.get("kind", "run"),
                      entry.get("kernel") or entry.get("entry") or "-",
                      entry.get("opt_level") or "-",
                      entry.get("memsys") or "-",
                      entry.get("cycles")
                      if entry.get("cycles") is not None else "-",
                      entry.get("session") or "-")
    print(table.render())
    return 0


def _telemetry_watchdog(options, store) -> int:
    from repro.observe.diff import watchdog
    from repro.observe.telemetry import TelemetrySession
    session = (TelemetrySession(store=store, label="watchdog")
               if options.record else None)
    if session is not None:
        with session:
            report = watchdog(options.baselines, _thresholds(options),
                              wall_limit=options.wall_limit,
                              session=session)
    else:
        report = watchdog(options.baselines, _thresholds(options),
                          wall_limit=options.wall_limit)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
