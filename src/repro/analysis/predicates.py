"""Boolean algebra over predicate values.

The redundancy eliminations of §5 rest on "elementary boolean
manipulations" of controlling predicates: store-before-store needs
``p1 implies p2`` (post-dominance), load-after-store needs ``p_load implies
(p_s1 or p_s2 ...)`` (Gupta dominance), dead-op removal needs ``p == false``.

Predicates are ordinary graph values (0/1 integers). This module extracts a
boolean expression for a port — treating ``and``/``or``/``lnot``/constants
structurally and everything else (comparisons, merged loop values) as opaque
atoms — and decides validity by exhaustive evaluation over the atoms
(Shannon expansion). Expressions in practice have a handful of atoms; a
configurable cap keeps the check linear in graph size overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.frontend import types as ty

MAX_ATOMS = 12


@dataclass(frozen=True)
class BoolExpr:
    """kind: 'const' (value in ``value``), 'atom' (port), 'and'/'or'/'not'."""

    kind: str
    value: Optional[int] = None
    atom: Optional[OutPort] = None
    args: tuple["BoolExpr", ...] = ()

    def atoms(self) -> set[OutPort]:
        if self.kind == "atom":
            assert self.atom is not None
            return {self.atom}
        result: set[OutPort] = set()
        for arg in self.args:
            result |= arg.atoms()
        return result

    def evaluate(self, assignment: dict[OutPort, bool]) -> bool:
        if self.kind == "const":
            return bool(self.value)
        if self.kind == "atom":
            assert self.atom is not None
            return assignment[self.atom]
        if self.kind == "and":
            return all(arg.evaluate(assignment) for arg in self.args)
        if self.kind == "or":
            return any(arg.evaluate(assignment) for arg in self.args)
        if self.kind == "not":
            return not self.args[0].evaluate(assignment)
        raise ValueError(f"bad BoolExpr kind {self.kind}")


TRUE = BoolExpr("const", value=1)
FALSE = BoolExpr("const", value=0)


def extract(port: OutPort, depth: int = 16) -> BoolExpr:
    """The boolean function computed by ``port``, atoms for opaque parts."""
    node = port.node
    if isinstance(node, N.ConstNode):
        return TRUE if node.value else FALSE
    if depth <= 0:
        return BoolExpr("atom", atom=port)
    if isinstance(node, N.BinOpNode) and node.op in ("and", "or"):
        lhs = extract(node.inputs[0], depth - 1)  # type: ignore[arg-type]
        rhs = extract(node.inputs[1], depth - 1)  # type: ignore[arg-type]
        return BoolExpr(node.op, args=(lhs, rhs))
    if isinstance(node, N.UnOpNode) and node.op == "lnot":
        inner = extract(node.inputs[0], depth - 1)  # type: ignore[arg-type]
        # lnot is boolean negation only over 0/1 inputs; predicates are.
        return BoolExpr("not", args=(inner,))
    return BoolExpr("atom", atom=port)


def _valid(expr: BoolExpr) -> bool:
    """Is the expression true under every atom assignment?"""
    atoms = sorted(expr.atoms(), key=lambda p: (p.node.id, p.index))
    if len(atoms) > MAX_ATOMS:
        return False  # conservatively unknown
    for mask in range(1 << len(atoms)):
        assignment = {
            atom: bool(mask >> i & 1) for i, atom in enumerate(atoms)
        }
        if not expr.evaluate(assignment):
            return False
    return True


def implies(p: OutPort, q: OutPort) -> bool:
    """Is ``p -> q`` valid? (Conservative: False when unknown.)"""
    return _valid(BoolExpr("or", args=(BoolExpr("not", args=(extract(p),)),
                                       extract(q))))


def implies_any(p: OutPort, qs: list[OutPort]) -> bool:
    """Is ``p -> (q1 or q2 or ...)`` valid?"""
    disjunction = FALSE
    for q in qs:
        disjunction = BoolExpr("or", args=(disjunction, extract(q)))
    return _valid(BoolExpr("or", args=(BoolExpr("not", args=(extract(p),)),
                                       disjunction)))


def is_false(p: OutPort) -> bool:
    return _valid(BoolExpr("not", args=(extract(p),)))


def is_true(p: OutPort) -> bool:
    return _valid(extract(p))


def equivalent(p: OutPort, q: OutPort) -> bool:
    ep, eq = extract(p), extract(q)
    both = BoolExpr("and", args=(
        BoolExpr("or", args=(BoolExpr("not", args=(ep,)), eq)),
        BoolExpr("or", args=(BoolExpr("not", args=(eq,)), ep)),
    ))
    return _valid(both)


def disjoint(p: OutPort, q: OutPort) -> bool:
    """Can ``p`` and ``q`` never be true together?"""
    return _valid(BoolExpr("not", args=(BoolExpr("and",
                                                 args=(extract(p), extract(q))),)))


# ---------------------------------------------------------------------------
# Predicate construction helpers (with local constant folding)


def const_pred(graph: Graph, value: bool, hyperblock: int) -> OutPort:
    return graph.add(N.ConstNode(1 if value else 0, ty.INT, hyperblock)).out()


def _const_of(port: OutPort) -> Optional[int]:
    if isinstance(port.node, N.ConstNode):
        return 1 if port.node.value else 0
    return None


def make_not(graph: Graph, port: OutPort, hyperblock: int) -> OutPort:
    value = _const_of(port)
    if value is not None:
        return const_pred(graph, not value, hyperblock)
    node = port.node
    if isinstance(node, N.UnOpNode) and node.op == "lnot":
        inner = node.inputs[0]
        # lnot(lnot(x)) is x only when x is 0/1; predicate ports are.
        if inner is not None and _is_boolean(inner):
            return inner
    return graph.add(N.UnOpNode("lnot", ty.INT, port, hyperblock)).out()


def make_and(graph: Graph, a: OutPort, b: OutPort, hyperblock: int) -> OutPort:
    if _const_of(a) == 1:
        return b
    if _const_of(b) == 1:
        return a
    if _const_of(a) == 0 or _const_of(b) == 0:
        return const_pred(graph, False, hyperblock)
    if a == b:
        return a
    return graph.add(N.BinOpNode("and", ty.INT, a, b, hyperblock)).out()


def make_or(graph: Graph, a: OutPort, b: OutPort, hyperblock: int) -> OutPort:
    if _const_of(a) == 0:
        return b
    if _const_of(b) == 0:
        return a
    if _const_of(a) == 1 or _const_of(b) == 1:
        return const_pred(graph, True, hyperblock)
    if a == b:
        return a
    return graph.add(N.BinOpNode("or", ty.INT, a, b, hyperblock)).out()


def make_or_all(graph: Graph, ports: list[OutPort], hyperblock: int) -> OutPort:
    if not ports:
        return const_pred(graph, False, hyperblock)
    result = ports[0]
    for port in ports[1:]:
        result = make_or(graph, result, port, hyperblock)
    return result


def _is_boolean(port: OutPort) -> bool:
    """Does this port provably carry only 0/1?"""
    node = port.node
    if isinstance(node, N.BinOpNode):
        return node.op in ("eq", "ne", "lt", "le", "gt", "ge", "and", "or") and (
            node.op in ("eq", "ne", "lt", "le", "gt", "ge")
            or all(p is not None and _is_boolean(p) for p in node.inputs)
        )
    if isinstance(node, N.UnOpNode):
        return node.op == "lnot"
    if isinstance(node, N.ConstNode):
        return node.value in (0, 1)
    return False
