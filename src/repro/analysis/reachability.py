"""Cached reachability over the Pegasus forward DAG.

The paper's §5: "testing for the cycle-free condition is easily
accomplished with a reachability computation in the Pegasus DAG which
ignores the back-edges; by caching the results for a batch of
optimizations, its amortized cost remains linear."

Every node gets one bit; one sweep in reverse topological order computes,
per node, the bitset of nodes reachable from it through forward edges. The
cache is valid for one graph snapshot; passes build a fresh instance after
mutating the graph.
"""

from __future__ import annotations

from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N


class Reachability:
    """Answers "can a value flow from node a to node b (forward edges)?"."""

    def __init__(self, graph: Graph):
        self.graph = graph
        order = graph.topological_order()
        self._bit = {node.id: 1 << index for index, node in enumerate(order)}
        self._reach: dict[int, int] = {}
        for node in reversed(order):  # consumers before producers
            mask = self._bit[node.id]
            for index in range(node.num_outputs):
                for slot in graph.uses(OutPort(node, index)):
                    if slot.index in slot.node.back_input_indices():
                        continue  # ignore loop back edges
                    mask |= self._reach[slot.node.id]
            self._reach[node.id] = mask

    def reaches(self, source: N.Node, target: N.Node) -> bool:
        """Is there a forward path (possibly empty) from source to target?"""
        return bool(self._reach.get(source.id, 0) & self._bit.get(target.id, 0))

    def any_reaches(self, sources, target: N.Node) -> bool:
        return any(self.reaches(s, target) for s in sources)

    def port_reaches(self, port: OutPort, target: N.Node) -> bool:
        return self.reaches(port.node, target)
