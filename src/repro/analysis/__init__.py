"""Program analyses backing the optimizations.

- ``locations``/``pointers``: abstract memory locations, read/write sets
  (§3.3), ``#pragma independent`` connection analysis (§7.1);
- ``predicates``: boolean algebra over predicate nodes — implication via
  Shannon expansion (§5.2's post-dominance test);
- ``reachability``: cached DAG reachability (§5's cycle-freedom test);
- ``symbolic``: affine address expressions for disambiguation (§4.3);
- ``induction``: induction variables, monotonicity, dependence distances
  (§4.3, §6.2, §6.3).
"""

from repro.analysis.locations import Location, LocationClasses, overlap
from repro.analysis.pointers import PointerAnalysis

__all__ = ["Location", "LocationClasses", "overlap", "PointerAnalysis"]
