"""Induction-variable analysis on Pegasus loops (§4.3, §6.2, §6.3).

A *basic induction variable* of a loop hyperblock is a data merge whose
back-edge value is (merge + step) for a constant step — found by chasing
the back input through its eta and taking the affine form of the eta's
value in terms of the merge's own output.

From IVs the passes derive:

- §4.3(2): two addresses affine in IVs of equal pace but offset starting
  values never collide (``never_equal_across_iterations``);
- §6.2: an address strictly monotone in an IV, advancing at least the
  access width per iteration, never revisits a location
  (``is_monotone_non_overlapping``);
- §6.3: two same-IV addresses at constant byte offset give a dependence
  distance in iterations (``dependence_distance``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.analysis.symbolic import AddressAnalysis, Affine


@dataclass
class InductionVariable:
    merge: N.MergeNode
    step: int
    # Affine form of the value entering the loop (None when the entry value
    # is not analyzable — e.g. several entry edges with different forms).
    init: Affine | None

    @property
    def port(self) -> OutPort:
        return self.merge.out()

    def __repr__(self) -> str:
        return f"iv({self.merge!r}, step={self.step})"


class LoopInduction:
    """Induction variables and loop-(in)variance for one loop hyperblock."""

    def __init__(self, graph: Graph, hyperblock: int,
                 addresses: AddressAnalysis | None = None):
        self.graph = graph
        self.hyperblock = hyperblock
        self.addresses = addresses or AddressAnalysis()
        self.ivs: dict[OutPort, InductionVariable] = {}
        self.invariant_merges: set[int] = set()
        self._find()

    # ------------------------------------------------------------------

    def _loop_merges(self) -> list[N.MergeNode]:
        return [
            node for node in self.graph.by_kind(N.MergeNode)
            if node.hyperblock == self.hyperblock and node.back_inputs
            and node.value_class == N.DATA
        ]

    def _back_values(self, merge: N.MergeNode) -> list[OutPort]:
        """Value ports feeding the merge's back inputs (through their etas)."""
        values = []
        for slot in sorted(merge.back_inputs):  # excludes the control slot
            port = merge.inputs[slot]
            if port is None:
                return []
            if isinstance(port.node, N.EtaNode):
                inner = port.node.value_input
                if inner is None:
                    return []
                values.append(inner)
            else:
                values.append(port)
        return values

    def _entry_values(self, merge: N.MergeNode) -> list[OutPort]:
        values = []
        for slot in merge.entry_slots():
            port = merge.inputs[slot]
            if port is None:
                continue
            if isinstance(port.node, N.EtaNode):
                inner = port.node.value_input
                if inner is not None:
                    values.append(inner)
                    continue
            values.append(port)
        return values

    def _find(self) -> None:
        for merge in self._loop_merges():
            back = self._back_values(merge)
            if not back:
                continue
            forms = [self.addresses.affine(v) for v in back]
            # Invariant: the value circulates unchanged (x -> x).
            if all(f.single_term() == (merge.out(), 1) and f.const == 0
                   for f in forms):
                self.invariant_merges.add(merge.id)
                continue
            # Basic IV: back value is merge + step with one common step.
            steps = set()
            for form in forms:
                term = form.single_term()
                if term is None or term[0] != merge.out() or term[1] != 1:
                    steps.clear()
                    break
                steps.add(form.const)
            if len(steps) == 1:
                step = steps.pop()
                if step != 0:
                    entries = self._entry_values(merge)
                    init = None
                    if len(entries) == 1:
                        init = self.addresses.affine(entries[0])
                    self.ivs[merge.out()] = InductionVariable(merge, step, init)

    # ------------------------------------------------------------------

    def is_invariant_port(self, port: OutPort, depth: int = 32) -> bool:
        """Does this port carry the same value on every loop iteration?"""
        if depth <= 0:
            return False
        node = port.node
        if isinstance(node, (N.ConstNode, N.ParamNode, N.SymbolAddrNode)):
            return True
        if node.hyperblock != self.hyperblock:
            return True  # produced outside: one value per loop activation
        if isinstance(node, N.MergeNode):
            return node.id in self.invariant_merges
        if isinstance(node, (N.BinOpNode, N.UnOpNode, N.CastNode)):
            return all(
                p is not None and self.is_invariant_port(p, depth - 1)
                for p in node.inputs
            )
        return False

    def address_iv_form(self, port: OutPort) -> tuple[InductionVariable, int, Affine] | None:
        """Decompose an address as (iv, coeff, rest) with rest invariant.

        Returns None unless exactly one IV term appears and every other
        term is loop-invariant.
        """
        form = self.addresses.affine(port)
        iv_terms = [(k, c) for k, c in form.terms
                    if isinstance(k, OutPort) and k in self.ivs]
        if len(iv_terms) != 1:
            return None
        key, coeff = iv_terms[0]
        rest_terms = []
        for k, c in form.terms:
            if k == key:
                continue
            if isinstance(k, OutPort):
                if not self.is_invariant_port(k):
                    return None
            elif not (isinstance(k, tuple) and k[0] == "object"):
                return None
            rest_terms.append((k, c))
        rest = Affine(const=form.const, terms=tuple(rest_terms))
        return self.ivs[key], coeff, rest

    # ------------------------------------------------------------------
    # Dependence facts

    def is_monotone_non_overlapping(self, port: OutPort, width: int) -> bool:
        """§6.2: does the address advance past itself every iteration?"""
        decomposition = self.address_iv_form(port)
        if decomposition is None:
            return False
        iv, coeff, _ = decomposition
        return abs(coeff * iv.step) >= width

    def dependence_distance(self, a: OutPort, width_a: int,
                            b: OutPort, width_b: int) -> int | None:
        """§6.3: iterations between conflicting accesses of ``a`` and ``b``.

        Both must be affine in the *same* IV with the same pace; the result
        is ``d`` such that ``a`` at iteration ``n`` touches the address
        ``b`` touches at iteration ``n + d``. Returns None when the
        accesses can never conflict or when the pace is too small for the
        access widths (partial overlap).
        """
        da = self.address_iv_form(a)
        db = self.address_iv_form(b)
        if da is None or db is None:
            return None
        iv_a, coeff_a, rest_a = da
        iv_b, coeff_b, rest_b = db
        if iv_a.merge is not iv_b.merge or coeff_a != coeff_b:
            return None
        pace = coeff_a * iv_a.step
        if pace == 0 or abs(pace) < max(width_a, width_b):
            return None
        delta = rest_a.sub(rest_b)
        if not delta.is_constant:
            return None
        if delta.const % pace != 0:
            return None  # offsets interleave; never the same address
        return delta.const // pace

    def never_equal_across_iterations(self, a: OutPort, width_a: int,
                                      b: OutPort, width_b: int) -> bool:
        """§4.3(2): same pace, starting offset not a multiple of the pace."""
        da = self.address_iv_form(a)
        db = self.address_iv_form(b)
        if da is None or db is None:
            return False
        iv_a, coeff_a, rest_a = da
        iv_b, coeff_b, rest_b = db
        pace_a = coeff_a * iv_a.step
        pace_b = coeff_b * iv_b.step
        if pace_a != pace_b or pace_a == 0:
            return False
        pace = abs(pace_a)
        width = max(width_a, width_b)
        if pace < width:
            return False
        if iv_a.merge is iv_b.merge:
            delta = rest_a.sub(rest_b)
            if not delta.is_constant:
                return False
            offset = delta.const % pace
        else:
            # Distinct IVs advancing in lockstep: compare starting values.
            if iv_a.init is None or iv_b.init is None:
                return False
            start_delta = rest_a.add(iv_a.init.scale(coeff_a)).sub(
                rest_b.add(iv_b.init.scale(coeff_b)))
            if not start_delta.is_constant:
                return False
            offset = start_delta.const % pace
        # The residues stay ``offset`` apart forever; they never overlap
        # when the gap clears the access width in both circular directions.
        return width <= offset <= pace - width
