"""Abstract memory locations and their may-overlap relation.

A read/write set (the paper's §3.3, "tags" / "M-lists" elsewhere) is a
``frozenset`` of :class:`Location`:

- ``object`` — a specific global, string literal, or stack slot;
- ``param`` — everything reachable through a pointer parameter of the
  compiled (entry) procedure, about which nothing else is known;
- ``unknown`` — a pointer the analysis lost track of.

``#pragma independent p q`` (§7.1) removes the (p, q) pair from the overlap
relation, exactly like the paper's connection analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend import ast

OBJECT = "object"
PARAM = "param"
UNKNOWN_KIND = "unknown"


@dataclass(frozen=True)
class Location:
    kind: str
    symbol: Optional[ast.Symbol] = None

    def __repr__(self) -> str:
        if self.kind == UNKNOWN_KIND:
            return "loc(?)"
        assert self.symbol is not None
        return f"loc({self.symbol.name}#{self.symbol.unique_id})"

    @property
    def is_constant_object(self) -> bool:
        """May loads from here skip serialization entirely (§4.2)?"""
        return (self.kind == OBJECT and self.symbol is not None
                and self.symbol.is_const)


UNKNOWN = Location(UNKNOWN_KIND)


def object_location(symbol: ast.Symbol) -> Location:
    return Location(OBJECT, symbol)


def param_location(symbol: ast.Symbol) -> Location:
    return Location(PARAM, symbol)


IndependencePairs = frozenset  # of frozenset({Symbol, Symbol})


def overlap(a: Location, b: Location,
            independent: frozenset = frozenset()) -> bool:
    """May locations ``a`` and ``b`` denote the same address?"""
    if a.kind == UNKNOWN_KIND or b.kind == UNKNOWN_KIND:
        return True
    assert a.symbol is not None and b.symbol is not None
    if frozenset((a.symbol, b.symbol)) in independent:
        return False
    if a.kind == OBJECT and b.kind == OBJECT:
        return a.symbol is b.symbol
    # A pointer parameter may point into any object or any other parameter's
    # referent — unless a pragma said otherwise (handled above).
    return True


def sets_overlap(a: frozenset[Location], b: frozenset[Location],
                 independent: frozenset = frozenset()) -> bool:
    """May two read/write sets touch a common address?"""
    return any(overlap(x, y, independent) for x in a for y in b)


class LocationClasses:
    """Partition of locations into serialization classes.

    Two locations are in the same class when they (transitively) may
    overlap. Each class gets its own merge/eta token circuit through the
    hyperblock graph (§6, Figure 11); a memory operation whose read/write
    set spans several classes synchronizes with each of them.
    """

    def __init__(self, locations: list[Location],
                 independent: frozenset = frozenset()):
        self.locations = list(dict.fromkeys(locations))
        self.independent = independent
        self._parent: dict[Location, Location] = {l: l for l in self.locations}
        for i, first in enumerate(self.locations):
            for second in self.locations[i + 1:]:
                if overlap(first, second, independent):
                    self._union(first, second)
        roots = dict.fromkeys(self._find(l) for l in self.locations)
        self._class_ids = {root: index for index, root in enumerate(roots)}

    def _find(self, loc: Location) -> Location:
        while self._parent[loc] is not loc:
            self._parent[loc] = self._parent[self._parent[loc]]
            loc = self._parent[loc]
        return loc

    def _union(self, a: Location, b: Location) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra is not rb:
            self._parent[rb] = ra

    @property
    def num_classes(self) -> int:
        return len(self._class_ids)

    def class_of(self, loc: Location) -> int:
        return self._class_ids[self._find(loc)]

    def classes_of_set(self, rwset: frozenset[Location]) -> frozenset[int]:
        return frozenset(self.class_of(loc) for loc in rwset)

    def members(self, class_id: int) -> list[Location]:
        return [l for l in self.locations if self.class_of(l) == class_id]

    def __repr__(self) -> str:
        groups: dict[int, list[Location]] = {}
        for loc in self.locations:
            groups.setdefault(self.class_of(loc), []).append(loc)
        parts = [f"{cid}: {locs}" for cid, locs in sorted(groups.items())]
        return "LocationClasses(" + "; ".join(parts) + ")"
