"""Flow-insensitive pointer analysis over the three-address CFG.

Computes, for every temp, the set of abstract locations its value may
address ("origins"), and from that the read/write set of every memory
instruction (§3.3). The lattice is small: address arithmetic (add/sub,
copies, casts) preserves origins; anything else collapses to ``unknown``;
pointers stored into memory are folded into one bucket that every
pointer-typed load drains (a one-cell heap abstraction).

``entry_points_to`` lets a harness state what each pointer parameter of the
compiled procedure points to — the role the paper's manual annotations play
for inter-procedural precision (§7.1). Without it, a parameter is its own
opaque root, refinable only by ``#pragma independent``.
"""

from __future__ import annotations

from repro.frontend import ast
from repro.frontend import types as ty
from repro.cfg import ir
from repro.analysis.locations import (
    UNKNOWN,
    Location,
    LocationClasses,
    object_location,
    param_location,
    sets_overlap,
)

_PRESERVING_BINOPS = frozenset({"add", "sub"})


class PointerAnalysis:
    """Origins, read/write sets, and location classes for one function."""

    def __init__(self, func: ir.Function, globals_: list[ast.Symbol],
                 entry_points_to: dict[str, list[ast.Symbol]] | None = None):
        self.func = func
        self.globals = list(globals_)
        self.entry_points_to = entry_points_to or {}
        self.independent = frozenset(
            frozenset((a, b)) for a, b in func.independent_pairs
        )
        self._origins: dict[ir.Temp, frozenset[Location]] = {}
        self._rwsets: dict[int, frozenset[Location]] = {}
        self._compute()
        self.classes = self._build_classes()

    # ------------------------------------------------------------------

    def origins(self, operand: ir.Operand) -> frozenset[Location]:
        if isinstance(operand, ir.SymAddr):
            return frozenset({object_location(operand.symbol)})
        if isinstance(operand, ir.Temp):
            return self._origins.get(operand, frozenset())
        return frozenset()

    def rwset(self, instr: ir.Instr) -> frozenset[Location]:
        """The read/write set of a Load or Store instruction."""
        assert isinstance(instr, (ir.Load, ir.Store))
        return self._rwsets[id(instr)]

    def may_interfere(self, a: frozenset[Location], b: frozenset[Location]) -> bool:
        return sets_overlap(a, b, self.independent)

    def is_immutable_access(self, rwset: frozenset[Location]) -> bool:
        """True when every location the access may touch is const (§4.2)."""
        return bool(rwset) and all(loc.is_constant_object for loc in rwset)

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        seeds: dict[ir.Temp, frozenset[Location]] = {}
        for symbol, temp in self.func.params:
            if symbol.type.is_pointer:
                if symbol.name in self.entry_points_to:
                    seeds[temp] = frozenset(
                        object_location(s)
                        for s in self.entry_points_to[symbol.name]
                    )
                else:
                    seeds[temp] = frozenset({param_location(symbol)})
        self._origins = dict(seeds)
        # One-cell heap abstraction for pointers that round-trip memory.
        memory_bucket: frozenset[Location] = frozenset({UNKNOWN})

        changed = True
        while changed:
            changed = False
            for _, instr in self.func.instructions():
                update: tuple[ir.Temp, frozenset[Location]] | None = None
                if isinstance(instr, ir.Copy):
                    update = (instr.dest, self.origins(instr.src))
                elif isinstance(instr, ir.CastOp):
                    update = (instr.dest, self.origins(instr.src))
                elif isinstance(instr, ir.BinOp):
                    combined = self.origins(instr.lhs) | self.origins(instr.rhs)
                    if combined:
                        if instr.op in _PRESERVING_BINOPS:
                            update = (instr.dest, combined)
                        else:
                            update = (instr.dest, frozenset({UNKNOWN}))
                elif isinstance(instr, ir.UnOp):
                    if self.origins(instr.src):
                        update = (instr.dest, frozenset({UNKNOWN}))
                elif isinstance(instr, ir.Load):
                    if instr.type.is_pointer:
                        update = (instr.dest, memory_bucket)
                elif isinstance(instr, ir.Store):
                    stored = self.origins(instr.src)
                    if stored and not stored <= memory_bucket:
                        memory_bucket = memory_bucket | stored
                        changed = True
                elif isinstance(instr, ir.Call):
                    if instr.dest is not None and instr.dest.type.is_pointer:
                        update = (instr.dest, frozenset({UNKNOWN}))
                if update is not None:
                    dest, new = update
                    old = self._origins.get(dest, frozenset())
                    if not new <= old:
                        self._origins[dest] = old | new
                        changed = True

        for _, instr in self.func.instructions():
            if isinstance(instr, (ir.Load, ir.Store)):
                rwset = self.origins(instr.addr)
                if not rwset:
                    rwset = frozenset({UNKNOWN})
                self._rwsets[id(instr)] = rwset

    def _build_classes(self) -> LocationClasses:
        seen: list[Location] = []
        for rwset in self._rwsets.values():
            for loc in rwset:
                seen.append(loc)
        return LocationClasses(list(dict.fromkeys(seen)), self.independent)
