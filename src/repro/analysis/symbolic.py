"""Symbolic (affine) address analysis (§4.3 heuristic 1).

An address port is summarized as an affine form ``const + Σ coeff·atom``
where atoms are opaque ports (parameters, loop merges, load results, …).
Two addresses provably differ when their difference is a nonzero constant
at least as large as the access width (accesses are aligned, §5), or when
they are rooted in distinct memory objects.

Address arithmetic is 64-bit unsigned in the IR; the symbolic reasoning
ignores wraparound, which is justified exactly where the paper's is:
well-defined C pointer arithmetic never wraps within an object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import types as ty
from repro.pegasus.graph import OutPort
from repro.pegasus import nodes as N

MAX_DEPTH = 64


@dataclass(frozen=True)
class Affine:
    """const + sum(coeff * atom); atoms are OutPorts or object symbols."""

    const: int = 0
    terms: tuple[tuple[object, int], ...] = ()  # sorted (atom-key, coeff)

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(const=value)

    @staticmethod
    def atom(key: object, coeff: int = 1) -> "Affine":
        return Affine(terms=((key, coeff),) if coeff else ())

    def add(self, other: "Affine") -> "Affine":
        return self._combine(other, 1)

    def sub(self, other: "Affine") -> "Affine":
        return self._combine(other, -1)

    def _combine(self, other: "Affine", sign: int) -> "Affine":
        coeffs: dict[object, int] = dict(self.terms)
        for key, coeff in other.terms:
            coeffs[key] = coeffs.get(key, 0) + sign * coeff
        terms = tuple(sorted(
            ((key, coeff) for key, coeff in coeffs.items() if coeff != 0),
            key=lambda item: _term_order(item[0]),
        ))
        return Affine(const=self.const + sign * other.const, terms=terms)

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine.constant(0)
        terms = tuple((key, coeff * factor) for key, coeff in self.terms)
        return Affine(const=self.const * factor, terms=terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def single_term(self) -> tuple[object, int] | None:
        """(atom, coeff) when the form is const + coeff*atom, else None."""
        if len(self.terms) == 1:
            return self.terms[0]
        return None

    def __repr__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for key, coeff in self.terms:
            parts.append(f"{coeff}*{key}")
        return " + ".join(parts) if parts else "0"


def _term_order(key: object):
    if isinstance(key, OutPort):
        return (0, key.node.id, key.index)
    return (1, str(key))


class AddressAnalysis:
    """Computes (and caches) affine forms of address ports."""

    def __init__(self):
        self._cache: dict[OutPort, Affine] = {}

    def affine(self, port: OutPort, depth: int = MAX_DEPTH) -> Affine:
        if port in self._cache:
            return self._cache[port]
        result = self._compute(port, depth)
        self._cache[port] = result
        return result

    def _compute(self, port: OutPort, depth: int) -> Affine:
        node = port.node
        if depth <= 0:
            return Affine.atom(port)
        if isinstance(node, N.ConstNode) and isinstance(node.value, int):
            return Affine.constant(node.value)
        if isinstance(node, N.SymbolAddrNode):
            return Affine.atom(("object", node.symbol))
        if isinstance(node, N.CastNode):
            # Widening integer casts preserve the value for in-range inputs.
            if _is_widening(node.from_type, node.to_type):
                source = node.inputs[0]
                assert source is not None
                return self.affine(source, depth - 1)
            return Affine.atom(port)
        if isinstance(node, N.BinOpNode) and port.index == 0:
            lhs_port, rhs_port = node.inputs
            if lhs_port is None or rhs_port is None:
                return Affine.atom(port)
            if node.op == "add":
                return self.affine(lhs_port, depth - 1).add(
                    self.affine(rhs_port, depth - 1))
            if node.op == "sub":
                return self.affine(lhs_port, depth - 1).sub(
                    self.affine(rhs_port, depth - 1))
            if node.op == "mul":
                lhs = self.affine(lhs_port, depth - 1)
                rhs = self.affine(rhs_port, depth - 1)
                if lhs.is_constant:
                    return rhs.scale(lhs.const)
                if rhs.is_constant:
                    return lhs.scale(rhs.const)
                return Affine.atom(port)
            if node.op == "shl":
                rhs = self.affine(rhs_port, depth - 1)
                if rhs.is_constant and 0 <= rhs.const < 63:
                    return self.affine(lhs_port, depth - 1).scale(1 << rhs.const)
                return Affine.atom(port)
        return Affine.atom(port)

    # ------------------------------------------------------------------

    def difference(self, a: OutPort, b: OutPort) -> Affine:
        return self.affine(a).sub(self.affine(b))

    def never_same_address(self, a: OutPort, width_a: int,
                           b: OutPort, width_b: int) -> bool:
        """Can accesses at ``a`` (width_a) and ``b`` (width_b) never overlap?

        True when the difference is a nonzero constant no smaller than the
        wider access, or when the two addresses are rooted in different
        memory objects (distinct objects are disjoint by layout).
        """
        fa, fb = self.affine(a), self.affine(b)
        diff = fa.sub(fb)
        if diff.is_constant:
            return abs(diff.const) >= max(width_a, width_b) and diff.const != 0
        root_a = _object_root(fa)
        root_b = _object_root(fb)
        if root_a is not None and root_b is not None and root_a is not root_b:
            return True
        return False

    def constant_difference(self, a: OutPort, b: OutPort) -> int | None:
        diff = self.difference(a, b)
        return diff.const if diff.is_constant else None


def _object_root(form: Affine):
    """The unique memory-object base of an affine form, if there is one.

    Requires coefficient 1 — the shape valid C pointer arithmetic produces.
    Distinctness of roots implies disjointness because out-of-object pointer
    arithmetic is undefined behaviour (the paper's assumption too).
    """
    roots = [
        (key[1], coeff) for key, coeff in form.terms
        if isinstance(key, tuple) and key[0] == "object"
    ]
    if len(roots) == 1 and roots[0][1] == 1:
        return roots[0][0]
    return None


def _is_widening(from_type: ty.Type, to_type: ty.Type) -> bool:
    if not (isinstance(from_type, ty.IntType) and isinstance(to_type, ty.IntType)):
        return False
    if to_type.size <= from_type.size:
        return False
    # Sign-extension and zero-extension both preserve the numeric value of
    # in-range inputs when the source interpretation matches.
    return True
