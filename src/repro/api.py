"""High-level API: MiniC source in, spatial program out.

Typical use::

    from repro import compile_minic

    program = compile_minic(source, entry="kernel", opt_level="full")
    result = program.simulate([arg0, arg1])
    oracle = program.run_sequential([arg0, arg1])
    assert result.return_value == oracle.return_value

``opt_level`` selects the pass pipeline (see :mod:`repro.opt.passes`):
``none`` builds the raw graph; ``basic`` adds scalar cleanup; ``medium`` is
the paper's Figure-19 "Medium" set (token removal by disambiguation,
pointer analysis/pragmas, induction-variable pipelining); ``full`` adds the
redundancy eliminations of §5, read-only loop splitting (§6.1) and loop
decoupling (§6.3).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.frontend import ast
from repro.cfg import ir
from repro.cfg.lower import LoweredProgram
from repro.pegasus.builder import BuildResult
from repro.pegasus.graph import Graph
from repro.sim.dataflow import DEFAULT_EVENT_LIMIT, DataflowResult, DataflowSimulator
from repro.sim.engine import CompiledEngine
from repro.sim.memory_image import MemoryImage
from repro.sim.memsys import MemoryConfig, MemorySystem, PERFECT_MEMORY
from repro.sim.plan import SimPlan, plan_for
from repro.sim.sequential import SequentialInterpreter, SequentialResult

OPT_LEVELS = ("none", "basic", "medium", "full")

#: Dataflow executors: the compiled engine (default), the per-plan code
#: generator, and the reference interpreter. All produce bit-identical
#: results; ``interp`` remains the executable specification and the
#: differential baseline, ``codegen`` is the fastest
#: (:mod:`repro.sim.codegen`) and also powers batched execution.
SIM_ENGINES = ("compiled", "codegen", "interp")


def resolve_engine(engine: str | None) -> str:
    """Normalize an engine selection (explicit > $REPRO_SIM_ENGINE > default)."""
    if engine is None:
        engine = os.environ.get("REPRO_SIM_ENGINE") or "compiled"
    if engine not in SIM_ENGINES:
        raise ValueError(f"engine must be one of {SIM_ENGINES}")
    return engine


@dataclass
class CompiledProgram:
    """A MiniC program compiled to a Pegasus graph, ready to simulate."""

    source_program: ast.Program
    lowered: LoweredProgram
    flat: ir.Function
    build: BuildResult
    entry: str
    opt_level: str
    # Per-stage / per-pass instrumentation from the CompilerDriver; None
    # only for programs constructed by hand.
    report: object = None

    @property
    def graph(self) -> Graph:
        return self.build.graph

    def sim_plan(self) -> SimPlan:
        """The (cached) simulation plan for this program's graph.

        Plans live in a per-graph weak cache (:func:`repro.sim.plan.plan_for`)
        validated against the graph's structural version, so every sweep
        cell sharing this compilation reuses one plan. They are not part
        of the pickled program — the persistent compilation cache stores
        graphs, and plans are rebuilt per process on first simulation.
        """
        return plan_for(self.graph)

    def new_memory(self, extern_elements: int = 1024) -> MemoryImage:
        """A fresh memory image with globals and stack objects laid out.

        Layout order is globals (program order) then the flattened entry's
        stack objects, so addresses match between both interpreters and
        across optimization levels.
        """
        image = MemoryImage(extern_elements=extern_elements)
        for symbol in self.lowered.globals:
            image.allocate(symbol)
        for symbol in self.flat.stack_objects:
            image.allocate(symbol)
        return image

    def simulate(self, args: list[object] | None = None,
                 memsys: MemoryConfig | MemorySystem | None = None,
                 memory: MemoryImage | None = None,
                 event_limit: int | None = None,
                 faults=None,
                 wall_limit: float | None = None,
                 profile=False,
                 probes=None,
                 engine: str | None = None,
                 telemetry=None) -> DataflowResult:
        """Execute spatially on the dataflow simulator (§7.3).

        ``event_limit`` bounds the number of simulation events (guarding
        non-terminating circuits); ``None`` means the simulator default.
        An explicit ``0`` is honored (every event exceeds it).
        ``faults`` is an optional
        :class:`~repro.resilience.faults.FaultPlan` perturbing the timing
        schedule deterministically; ``wall_limit`` is a wall-clock budget
        in seconds, enforced cooperatively
        (:class:`~repro.errors.SimulationTimeout` on overrun).

        ``profile`` turns on the observability subsystem: ``True`` (or an
        :class:`~repro.observe.Observation` of your own) runs the
        profiler and critical-path analysis over a probe bus and attaches
        the resulting :class:`~repro.observe.ProfileReport` as
        ``result.profile``. ``probes`` attaches a raw
        :class:`~repro.observe.ProbeBus` without report building (the
        two compose: an explicit ``probes`` bus hosts the profile's
        listeners too). Simulation without either stays probe-free —
        the instrumentation is inert.

        ``engine`` picks the executor: ``"compiled"`` (the default) runs
        the plan-driven :class:`~repro.sim.engine.CompiledEngine`,
        ``"codegen"`` the per-plan generated module
        (:class:`~repro.sim.codegen.CodegenEngine`; with probes or
        faults attached it transparently runs CompiledEngine's
        instrumented path), ``"interp"`` the reference interpreter;
        ``None`` defers to ``$REPRO_SIM_ENGINE``. Results are
        bit-identical regardless (the equivalence matrix in
        ``tests/sim/test_engine.py`` enforces it).

        ``telemetry`` controls run recording (see
        :mod:`repro.observe.telemetry`): ``None`` records into the
        ambient :class:`~repro.observe.telemetry.TelemetrySession` when
        one is active (and is inert otherwise), an explicit session or
        :class:`~repro.observe.store.TelemetryStore` records there, and
        ``False`` suppresses recording entirely.
        """
        engine = resolve_engine(engine)
        if isinstance(memsys, MemoryConfig):
            memsys = MemorySystem(memsys)
        memsys = memsys or MemorySystem(PERFECT_MEMORY)
        observation = None
        if profile:
            from repro.observe import Observation
            observation = (profile if isinstance(profile, Observation)
                           else Observation(bus=probes))
            probes = observation.bus
        if engine == "interp":
            executor = DataflowSimulator
        elif engine == "codegen":
            from repro.sim.codegen import CodegenEngine
            executor = CodegenEngine
        else:
            executor = CompiledEngine
        simulator = executor(
            self.graph if engine == "interp" else self.sim_plan(),
            memory=memory if memory is not None else self.new_memory(),
            memsys=memsys,
            event_limit=(DEFAULT_EVENT_LIMIT if event_limit is None
                         else event_limit),
            faults=faults,
            wall_limit=wall_limit,
            probes=probes,
        )
        from repro.observe.metrics import metrics
        from repro.observe.tracing import span
        registry = metrics()
        sim_started = time.perf_counter() if registry is not None else 0.0
        with span(f"run:{self.entry}", engine=engine,
                  memsys=memsys.config.name):
            result = simulator.run(list(args or []))
        if registry is not None:
            registry.counter("repro_simulations_total", engine=engine).inc()
            registry.histogram("repro_simulation_seconds",
                               engine=engine).observe(
                time.perf_counter() - sim_started)
        if observation is not None:
            result.profile = observation.report(
                self.graph, result, memsys_name=memsys.config.name)
        if telemetry is not False:
            self._record_telemetry(telemetry, result, engine=engine,
                                   memsys_name=memsys.config.name,
                                   args=list(args or []), faults=faults)
        return result

    def _record_telemetry(self, telemetry, result, *, engine, memsys_name,
                          args, faults) -> None:
        """Append a run record to the requested or ambient session."""
        from repro.observe.telemetry import (
            build_run_record, current_session,
        )
        sink = telemetry if telemetry is not None else current_session()
        if sink is None:
            return
        if hasattr(sink, "record_run"):        # a TelemetrySession
            sink.record_run(self, result, engine=engine,
                            memsys_name=memsys_name, args=args,
                            faults=faults)
        else:                                  # a bare TelemetryStore
            sink.append(build_run_record(self, result, engine=engine,
                                         memsys_name=memsys_name,
                                         args=args, faults=faults))

    def simulate_batch(self, arg_sets, memsys=None, engine: str | None = None,
                       event_limit: int | None = None,
                       wall_limit: float | None = None,
                       faults=None, telemetry=None,
                       return_exceptions: bool = False) -> list:
        """Run N input contexts in one pass; a list of results in order.

        On the ``codegen`` engine (the default here) the whole batch runs
        through one generated module: queues, fire functions, and fanout
        tables are instantiated once and reset between contexts,
        amortizing construction/priming overhead — figure sweeps, the
        ablation grid, and the differential fault matrix are
        embarrassingly batchable. Other engines fall back to a serial
        per-context :meth:`simulate` loop with the same semantics.

        ``memsys`` is one :class:`~repro.sim.memsys.MemoryConfig` shared
        by every context (each context still observes cold hierarchy
        state — the system is reset between contexts, bit-identical to a
        fresh one) or a list of per-context
        ``MemoryConfig``/``MemorySystem`` entries. ``faults`` is an
        optional per-context list of
        :class:`~repro.resilience.faults.FaultPlan`\\ s (``None`` entries
        run clean; faulted contexts take the instrumented path on a
        private memory system). With ``return_exceptions`` a failing
        context contributes its exception object instead of aborting
        the batch.
        """
        engine = resolve_engine("codegen" if engine is None else engine)
        arg_sets = [list(args or []) for args in arg_sets]
        count = len(arg_sets)
        if isinstance(memsys, MemorySystem):
            raise TypeError(
                "pass a MemoryConfig (or a per-context list) — one "
                "MemorySystem object cannot be shared across a batch")
        fault_list = list(faults) if faults is not None else [None] * count
        if len(fault_list) != count:
            raise ValueError("faults must provide one entry per context")

        def per_context_memsys(index):
            config = memsys[index] if isinstance(memsys, list) else memsys
            if isinstance(config, MemorySystem):
                return config
            return MemorySystem(config or PERFECT_MEMORY)

        if engine != "codegen":
            results = []
            for index, args in enumerate(arg_sets):
                try:
                    results.append(self.simulate(
                        args, memsys=per_context_memsys(index),
                        event_limit=event_limit, wall_limit=wall_limit,
                        faults=fault_list[index], engine=engine,
                        telemetry=telemetry))
                except Exception as error:  # noqa: BLE001 — opted in
                    if not return_exceptions:
                        raise
                    results.append(error)
            return results

        from repro.sim.codegen import run_batch
        proto = self.new_memory()
        memories = [proto] + [proto.clone() for _ in range(count - 1)]
        if isinstance(memsys, list):
            # One MemorySystem per *distinct* config entry: repeated
            # configs share a system that run_batch resets between
            # contexts (bit-identical to a fresh one), so a 50-cell grid
            # over 4 hierarchies builds 4 systems, not 50. Entries that
            # are already MemorySystem instances stay per-context.
            by_config: dict[int, MemorySystem] = {}
            systems = []
            for entry in memsys:
                if isinstance(entry, MemorySystem):
                    systems.append(entry)
                else:
                    key = id(entry)
                    system = by_config.get(key)
                    if system is None:
                        system = MemorySystem(entry or PERFECT_MEMORY)
                        by_config[key] = system
                    systems.append(system)
            names = [system.config.name for system in systems]
        else:
            shared = MemorySystem(memsys or PERFECT_MEMORY)
            systems = shared
            names = [shared.config.name] * count

        def on_result(index, result):
            if telemetry is not False:
                self._record_telemetry(
                    telemetry, result, engine="codegen",
                    memsys_name=names[index], args=arg_sets[index],
                    faults=fault_list[index])

        return run_batch(
            self.sim_plan(), arg_sets, memories=memories, systems=systems,
            event_limit=(DEFAULT_EVENT_LIMIT if event_limit is None
                         else event_limit),
            wall_limit=wall_limit, faults=fault_list,
            return_exceptions=return_exceptions, on_result=on_result)

    def check_timing_robustness(self, args: list[object] | None = None,
                                seeds: int = 3, plans=None, memsys=None,
                                engine: str | None = None):
        """Differential check over perturbed schedules (paper §4/§7 claim).

        Returns a
        :class:`~repro.resilience.differential.DifferentialResult`; a
        non-``ok`` result means timing changed semantics — a soundness
        bug in compilation or simulation. ``engine`` selects the dataflow
        executor for every schedule (see :meth:`simulate`).
        """
        from repro.resilience.differential import differential_check
        return differential_check(self, list(args or []), plans,
                                  seeds=seeds, memsys=memsys, engine=engine)

    def run_sequential(self, args: list[object] | None = None,
                       memsys: MemoryConfig | MemorySystem | None = None,
                       memory: MemoryImage | None = None) -> SequentialResult:
        """Execute the flattened CFG in program order (the oracle/baseline)."""
        if isinstance(memsys, MemoryConfig):
            memsys = MemorySystem(memsys)
        flat_program = LoweredProgram(functions={self.entry: self.flat},
                                      globals=self.lowered.globals)
        interpreter = SequentialInterpreter(
            flat_program,
            memory=memory if memory is not None else self.new_memory(),
            memsys=memsys,
        )
        return interpreter.run(self.entry, list(args or []))

    def static_counts(self) -> dict[str, int]:
        """Static node statistics (loads, stores, total) — Figure 18 lines."""
        from repro.pegasus import nodes as N
        stats = self.graph.stats()
        return {
            "nodes": len(self.graph),
            "loads": stats.get("LoadNode", 0),
            "stores": stats.get("StoreNode", 0),
            "muxes": stats.get("MuxNode", 0),
            "combines": stats.get("CombineNode", 0),
            "token_generators": stats.get("TokenGenNode", 0),
        }


def compile_minic(source: str, entry: str, opt_level: str = "full",
                  entry_points_to: dict[str, list[str]] | None = None,
                  filename: str = "<input>",
                  unroll_limit: int = 0,
                  cache=None,
                  cache_only: bool = False) -> CompiledProgram | None:
    """Compile MiniC source text: the whole pipeline in one call.

    ``entry_points_to`` optionally maps pointer-parameter names of the
    entry function to lists of global-array names they point to (the
    harness-level stand-in for whole-program pointer analysis, §7.1).
    ``unroll_limit`` > 1 fully unrolls counted loops of at most that many
    iterations before lowering (one of CASH's scalar optimizations).

    ``cache`` attaches a persistent
    :class:`~repro.pipeline.cache.CompilationCache` (``True`` for the
    default location). ``cache_only`` makes the call a warmth probe: a
    cached artifact is returned, a miss returns ``None`` without
    compiling — how the compile service answers "is this warm?" for
    free (``repro cache stat`` is the CLI face of the same probe).

    This is a thin compatibility wrapper over
    :class:`repro.pipeline.driver.CompilerDriver` at the strictest
    verification policy (``every-pass``); use the driver directly for
    other policies, instrumentation, or cache control.
    """
    if opt_level not in OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {OPT_LEVELS}")
    from repro.pipeline.cache import CompilationCache
    from repro.pipeline.config import PipelineConfig
    from repro.pipeline.driver import CompilerDriver
    config = PipelineConfig.make(opt_level=opt_level, verify="every-pass",
                                 unroll_limit=unroll_limit,
                                 entry_points_to=entry_points_to,
                                 filename=filename)
    if cache is True or (cache is None and cache_only):
        cache = CompilationCache()
    return CompilerDriver(config, cache=cache or None).compile(
        source, entry, cache_only=cache_only)
