"""High-level API: MiniC source in, spatial program out.

Typical use::

    from repro import compile_minic

    program = compile_minic(source, entry="kernel", opt_level="full")
    result = program.simulate([arg0, arg1])
    oracle = program.run_sequential([arg0, arg1])
    assert result.return_value == oracle.return_value

``opt_level`` selects the pass pipeline (see :mod:`repro.opt.passes`):
``none`` builds the raw graph; ``basic`` adds scalar cleanup; ``medium`` is
the paper's Figure-19 "Medium" set (token removal by disambiguation,
pointer analysis/pragmas, induction-variable pipelining); ``full`` adds the
redundancy eliminations of §5, read-only loop splitting (§6.1) and loop
decoupling (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import parse_program
from repro.frontend import ast
from repro.cfg import ir
from repro.cfg.lower import LoweredProgram, lower_program
from repro.cfg.inline import inline_program
from repro.pegasus.builder import BuildResult, build_pegasus
from repro.pegasus.graph import Graph
from repro.pegasus.verify import verify_graph
from repro.sim.dataflow import DataflowResult, DataflowSimulator
from repro.sim.memory_image import MemoryImage
from repro.sim.memsys import MemoryConfig, MemorySystem, PERFECT_MEMORY
from repro.sim.sequential import SequentialInterpreter, SequentialResult

OPT_LEVELS = ("none", "basic", "medium", "full")


@dataclass
class CompiledProgram:
    """A MiniC program compiled to a Pegasus graph, ready to simulate."""

    source_program: ast.Program
    lowered: LoweredProgram
    flat: ir.Function
    build: BuildResult
    entry: str
    opt_level: str

    @property
    def graph(self) -> Graph:
        return self.build.graph

    def new_memory(self, extern_elements: int = 1024) -> MemoryImage:
        """A fresh memory image with globals and stack objects laid out.

        Layout order is globals (program order) then the flattened entry's
        stack objects, so addresses match between both interpreters and
        across optimization levels.
        """
        image = MemoryImage(extern_elements=extern_elements)
        for symbol in self.lowered.globals:
            image.allocate(symbol)
        for symbol in self.flat.stack_objects:
            image.allocate(symbol)
        return image

    def simulate(self, args: list[object] | None = None,
                 memsys: MemoryConfig | MemorySystem | None = None,
                 memory: MemoryImage | None = None,
                 event_limit: int | None = None) -> DataflowResult:
        """Execute spatially on the dataflow simulator (§7.3)."""
        if isinstance(memsys, MemoryConfig):
            memsys = MemorySystem(memsys)
        simulator = DataflowSimulator(
            self.graph,
            memory=memory if memory is not None else self.new_memory(),
            memsys=memsys or MemorySystem(PERFECT_MEMORY),
            **({"event_limit": event_limit} if event_limit else {}),
        )
        return simulator.run(list(args or []))

    def run_sequential(self, args: list[object] | None = None,
                       memsys: MemoryConfig | MemorySystem | None = None,
                       memory: MemoryImage | None = None) -> SequentialResult:
        """Execute the flattened CFG in program order (the oracle/baseline)."""
        if isinstance(memsys, MemoryConfig):
            memsys = MemorySystem(memsys)
        flat_program = LoweredProgram(functions={self.entry: self.flat},
                                      globals=self.lowered.globals)
        interpreter = SequentialInterpreter(
            flat_program,
            memory=memory if memory is not None else self.new_memory(),
            memsys=memsys,
        )
        return interpreter.run(self.entry, list(args or []))

    def static_counts(self) -> dict[str, int]:
        """Static node statistics (loads, stores, total) — Figure 18 lines."""
        from repro.pegasus import nodes as N
        stats = self.graph.stats()
        return {
            "nodes": len(self.graph),
            "loads": stats.get("LoadNode", 0),
            "stores": stats.get("StoreNode", 0),
            "muxes": stats.get("MuxNode", 0),
            "combines": stats.get("CombineNode", 0),
            "token_generators": stats.get("TokenGenNode", 0),
        }


def compile_minic(source: str, entry: str, opt_level: str = "full",
                  entry_points_to: dict[str, list[str]] | None = None,
                  filename: str = "<input>",
                  unroll_limit: int = 0) -> CompiledProgram:
    """Compile MiniC source text: the whole pipeline in one call.

    ``entry_points_to`` optionally maps pointer-parameter names of the
    entry function to lists of global-array names they point to (the
    harness-level stand-in for whole-program pointer analysis, §7.1).
    ``unroll_limit`` > 1 fully unrolls counted loops of at most that many
    iterations before lowering (one of CASH's scalar optimizations).
    """
    if opt_level not in OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {OPT_LEVELS}")
    program = parse_program(source, filename)
    if unroll_limit > 1:
        from repro.frontend.unroll import unroll_program
        unroll_program(program, unroll_limit)
    lowered = lower_program(program)
    flat = inline_program(lowered, entry)
    points_to = _resolve_points_to(entry_points_to, lowered)
    build = build_pegasus(flat, lowered.globals, points_to)
    verify_graph(build.graph)
    if opt_level != "none":
        from repro.opt.passes import optimize
        optimize(build, level=opt_level)
        verify_graph(build.graph)
    return CompiledProgram(
        source_program=program,
        lowered=lowered,
        flat=flat,
        build=build,
        entry=entry,
        opt_level=opt_level,
    )


def _resolve_points_to(entry_points_to: dict[str, list[str]] | None,
                       lowered: LoweredProgram) -> dict[str, list[ast.Symbol]] | None:
    if not entry_points_to:
        return None
    by_name = {symbol.name: symbol for symbol in lowered.globals}
    resolved: dict[str, list[ast.Symbol]] = {}
    for param, names in entry_points_to.items():
        resolved[param] = [by_name[name] for name in names]
    return resolved
