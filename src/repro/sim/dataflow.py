"""Event-driven dataflow simulation of Pegasus graphs (§7.3).

Semantics follow the paper's asynchronous-circuit model: each node is a
hardware operator; an operator fires when the values it needs are present
on its input channels and re-fires as often as new values arrive (fully
pipelined, initiation interval limited only by its inputs). Channels are
FIFO queues. Special rules:

- **constants** (const, param, symbol-address — and pure nodes fed only by
  them) are wires tied to a value: always readable, never consumed;
- **merge** forwards whichever input arrives (inputs are mutually exclusive
  per control instance, so FIFO arrival order is the program order);
- **eta** consumes (value, predicate) and forwards the value only on true;
- **load/store** with a false predicate forward their token instantaneously
  without touching memory (§3.1); with a true predicate the functional
  effect happens at fire time and the token/value appear when the memory
  system completes the access;
- **tk(n)** implements the token generator of §6.3 (credits/demands);
- **return** ends the simulation; its completion time is the cycle count.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.errors import (
    DeadlockError,
    EventLimitError,
    SimulationError,
    SimulationTimeout,
)
from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.sim import latencies, ops
from repro.sim.memory_image import MemoryImage
from repro.sim.memsys import MemoryStats, MemorySystem, PERFECT_MEMORY

TOKEN = object()  # the single token value

DEFAULT_EVENT_LIMIT = 100_000_000


@dataclass
class DataflowResult:
    """Outcome of a spatial execution."""

    return_value: object
    cycles: int
    fired: int
    loads: int            # loads that actually accessed memory
    stores: int           # stores that actually accessed memory
    skipped_memops: int   # predicated-false memory operations
    memory: MemoryImage
    memory_stats: MemoryStats
    fire_counts: dict[int, int] = field(default_factory=dict)
    # Filled by api.simulate(profile=...): an observe.ProfileReport with
    # per-opcode/per-node counters and the critical-path attribution.
    profile: object = None

    @property
    def memory_operations(self) -> int:
        return self.loads + self.stores


class _NodeState:
    __slots__ = ("queues", "tk_credits", "tk_demands", "last_done",
                 "merge_expect")

    def __init__(self, node: N.Node):
        self.queues: list[deque] = [deque() for _ in node.inputs]
        self.tk_credits = getattr(node, "count", 0)
        self.tk_demands = 0
        # Memory operators complete in issue order (a hardware operator's
        # results come out of its pipeline FIFO); token-counting structures
        # (collectors, tk(n)) rely on this.
        self.last_done = 0
        # Controlled (loop) merges: which input class the next output is
        # drawn from; None = awaiting the control predicate's decision.
        self.merge_expect: str | None = "entry"


class DataflowSimulator:
    """Executes one Pegasus graph against a memory image and memory system."""

    #: How often (in events) the wall-clock budget is polled.
    WALL_CHECK_INTERVAL = 4096
    #: How many hottest nodes an event-limit overrun reports.
    HOT_NODE_COUNT = 5

    def __init__(self, graph: Graph, memory: MemoryImage | None = None,
                 memsys: MemorySystem | None = None,
                 event_limit: int = DEFAULT_EVENT_LIMIT,
                 faults=None, wall_limit: float | None = None,
                 probes=None):
        self.graph = graph
        self.memory = memory if memory is not None else MemoryImage()
        self.memsys = memsys or MemorySystem(PERFECT_MEMORY)
        self.event_limit = event_limit
        self.wall_limit = wall_limit
        # Deterministic fault injection (a resilience.faults.FaultPlan):
        # one injector per run, shared with the memory system so every
        # fault family draws from the same seeded stream.
        self.fault_plan = faults
        self._inject = faults.injector() if faults is not None else None
        if self._inject is not None and \
                getattr(self.memsys, "faults", None) is None:
            self.memsys.faults = self._inject
        # Observability (an observe.probes.ProbeBus). Each hook is cached
        # as a per-channel attribute that stays None when nothing
        # subscribed, so every instrumentation site costs one identity
        # test when observation is off. Subscribe before run().
        self.probes = probes
        self._p_fire = None
        self._p_emit = None
        self._p_enqueue = None
        self._p_dequeue = None
        self._state: dict[int, _NodeState] = {}
        self._sticky: dict[OutPort, object] = {}
        self._sticky_nodes: set[int] = set()
        self._events: list = []
        self._seq = 0
        self._now = 0
        self._fired = 0
        self._loads = 0
        self._stores = 0
        self._skipped = 0
        self._fire_counts: Counter[int] = Counter()
        self._done = False
        self._return_value: object = None
        # Strict nodes whose every input is a constant wire have no arrival
        # to trigger them; they fire exactly once (their hyperblock is the
        # entry region, which executes once).
        self._oneshot_fired: set[int] = set()

    # ------------------------------------------------------------------

    def run(self, args: list[object] | None = None) -> DataflowResult:
        """Execute the graph with entry arguments ``args``."""
        args = args if args is not None else []
        if self.probes is not None:
            self._p_fire = self.probes.fire
            self._p_emit = self.probes.emit
            self._p_enqueue = self.probes.enqueue
            self._p_dequeue = self.probes.dequeue
            if getattr(self.memsys, "probes", None) is None:
                self.memsys.probes = self.probes
        for node in self.graph:
            self._state[node.id] = _NodeState(node)
            if isinstance(node, N.SymbolAddrNode):
                self.memory.allocate(node.symbol)
        self._compute_sticky(args)
        # Prime the graph: initial tokens fire at time 0, and fully-constant
        # strict nodes take their single firing.
        for node in self.graph.by_kind(N.InitialTokenNode):
            self._emit(node, {0: TOKEN}, at=0)
        for node in self.graph:
            if node.id in self._sticky_nodes or not node.inputs:
                continue
            if self._all_inputs_constant(node):
                self._try_fire(node, 0)
        events = 0
        started = _time.monotonic()
        while self._events and not self._done:
            events += 1
            if events > self.event_limit:
                raise EventLimitError(
                    f"{self.graph.name}: event limit exceeded "
                    f"({self.event_limit}) at cycle {self._now}",
                    self.event_limit, self._now,
                    hot_nodes=self._hottest_nodes(),
                )
            if self.wall_limit is not None \
                    and events % self.WALL_CHECK_INTERVAL == 0:
                elapsed = _time.monotonic() - started
                if elapsed > self.wall_limit:
                    raise SimulationTimeout(
                        f"{self.graph.name}: simulation exceeded its "
                        f"wall-clock budget at cycle {self._now}",
                        self.wall_limit, elapsed,
                    )
            time, _, _, node, outputs = heapq.heappop(self._events)
            self._now = max(self._now, time)
            self._deliver(node, outputs, time)
        if not self._done:
            from repro.resilience.forensics import build_deadlock_report
            report = build_deadlock_report(self)
            raise DeadlockError(
                f"{self.graph.name}: dataflow execution deadlocked",
                self._now, pending=list(report.blocked), report=report,
            )
        return DataflowResult(
            return_value=self._return_value,
            cycles=self._now,
            fired=self._fired,
            loads=self._loads,
            stores=self._stores,
            skipped_memops=self._skipped,
            memory=self.memory,
            memory_stats=self.memsys.stats,
            fire_counts=dict(self._fire_counts),
        )

    # ------------------------------------------------------------------
    # Constants

    _STICKY_PURE = (N.BinOpNode, N.UnOpNode, N.CastNode, N.MuxNode)

    def _compute_sticky(self, args: list[object]) -> None:
        """Evaluate the constant subgraph once; its ports become wires."""
        for node in self.graph.topological_order():
            if isinstance(node, N.ConstNode):
                self._sticky[node.out()] = node.value
            elif isinstance(node, N.ParamNode):
                if node.index >= len(args):
                    raise SimulationError(
                        f"missing argument for parameter {node.name!r}"
                    )
                self._sticky[node.out()] = args[node.index]
            elif isinstance(node, N.SymbolAddrNode):
                self._sticky[node.out()] = self.memory.allocate(node.symbol)
            elif isinstance(node, self._STICKY_PURE):
                if all(p is not None and p in self._sticky for p in node.inputs):
                    values = [self._sticky[p] for p in node.inputs]
                    self._sticky[node.out()] = self._evaluate_pure(node, values)
                else:
                    continue
            else:
                continue
            self._sticky_nodes.add(node.id)

    # ------------------------------------------------------------------
    # Event plumbing

    def _emit(self, node: N.Node, outputs: dict[int, object], at: int) -> None:
        if self._p_emit is not None:
            self._p_emit(node, outputs, at)
        self._seq += 1
        key = self._seq
        if self._inject is not None:
            key = self._inject.reorder_key(node.id, at, self._seq)
        heapq.heappush(self._events, (at, key, self._seq, node, outputs))

    def _hottest_nodes(self) -> list[tuple[str, int]]:
        """Top-k nodes by fire count, labelled — livelock forensics."""
        hottest = heapq.nlargest(self.HOT_NODE_COUNT,
                                 self._fire_counts.items(),
                                 key=lambda item: (item[1], -item[0]))
        result = []
        for node_id, count in hottest:
            node = self.graph.nodes.get(node_id)
            label = f"{node.label()}#{node_id}" if node else f"#{node_id}"
            result.append((label, count))
        return result

    def _deliver(self, node: N.Node, outputs: dict[int, object], time: int) -> None:
        for out_index, value in outputs.items():
            port = OutPort(node, out_index)
            for slot in self.graph.uses(port):
                state = self._state[slot.node.id]
                state.queues[slot.index].append(value)
                if self._p_enqueue is not None:
                    self._p_enqueue(node, slot.node, slot.index, time)
                self._try_fire(slot.node, time)
                if self._done:
                    return

    # ------------------------------------------------------------------
    # Firing

    def _try_fire(self, node: N.Node, time: int) -> None:
        if node.id in self._sticky_nodes:
            # Sticky nodes never fire dynamically; drain stray deliveries.
            for queue in self._state[node.id].queues:
                queue.clear()
            return
        while self._fire_once(node, time):
            if self._done:
                return

    def _all_inputs_constant(self, node: N.Node) -> bool:
        return bool(node.inputs) and all(
            (port is None and _optional_input(node, index))
            or (port is not None and port in self._sticky)
            for index, port in enumerate(node.inputs)
        )

    def _input_ready(self, node: N.Node, index: int) -> bool:
        port = node.inputs[index]
        if port is None:
            return _optional_input(node, index)
        if port in self._sticky:
            return True
        return bool(self._state[node.id].queues[index])

    def _take(self, node: N.Node, index: int, time: int):
        port = node.inputs[index]
        if port is None:
            return TOKEN
        if port in self._sticky:
            return self._sticky[port]
        if self._p_dequeue is not None:
            self._p_dequeue(node, index, time)
        return self._state[node.id].queues[index].popleft()

    def _fire_once(self, node: N.Node, time: int) -> bool:
        if isinstance(node, N.MergeNode):
            return self._fire_merge(node, time)
        if isinstance(node, N.ControlStreamNode):
            state = self._state[node.id]
            for index, queue in enumerate(state.queues):
                if queue:
                    if self._p_dequeue is not None:
                        self._p_dequeue(node, index, time)
                    queue.popleft()  # the pulse value itself is irrelevant
                    self._record_fire(node, time)
                    decision = 1 if index in node.true_slots else 0
                    self._emit(node, {0: decision}, time + latencies.WIRE)
                    return True
            return False
        if isinstance(node, N.TokenGenNode):
            return self._fire_tokengen(node, time)
        if self._all_inputs_constant(node):
            if node.id in self._oneshot_fired:
                return False
            self._oneshot_fired.add(node.id)
        # Strict nodes: all inputs must be ready.
        if not all(self._input_ready(node, i) for i in range(len(node.inputs))):
            return False
        values = [self._take(node, i, time) for i in range(len(node.inputs))]
        self._record_fire(node, time)

        if isinstance(node, (N.BinOpNode, N.UnOpNode, N.CastNode, N.MuxNode)):
            result = self._evaluate_pure(node, values)
            self._emit(node, {0: result}, time + self._pure_latency(node))
            return True
        if isinstance(node, N.EtaNode):
            value, pred = values[0], values[1]  # values[2] is the trigger
            if ops.truthy(pred):
                self._emit(node, {0: value}, time + latencies.WIRE)
            return True
        if isinstance(node, N.CombineNode):
            self._emit(node, {0: TOKEN}, time + latencies.WIRE)
            return True
        if isinstance(node, N.LoadNode):
            return self._fire_load(node, values, time)
        if isinstance(node, N.StoreNode):
            return self._fire_store(node, values, time)
        if isinstance(node, N.ReturnNode):
            self._done = True
            self._return_value = values[0] if node.type is not None else None
            self._now = max(self._now, time)
            return True
        if isinstance(node, N.InitialTokenNode):
            return False  # emitted once at priming; nothing else to do
        raise SimulationError(f"cannot fire {node!r}")

    def _fire_merge(self, node: N.MergeNode, time: int) -> bool:
        state = self._state[node.id]
        if not node.has_control:
            # Join merge: inputs are mutually exclusive per activation and
            # activations arrive serialized; forward whatever is present.
            for index, queue in enumerate(state.queues):
                if queue:
                    if self._p_dequeue is not None:
                        self._p_dequeue(node, index, time)
                    value = queue.popleft()
                    self._record_fire(node, time)
                    self._emit(node, {0: value}, time + latencies.WIRE)
                    return True
            return False
        # Loop merge: deterministic, sequenced by the control predicate.
        if state.merge_expect is None:
            slot = node.control_slot
            assert slot is not None
            port = node.inputs[slot]
            if port is not None and port in self._sticky:
                pred = self._sticky[port]
            elif state.queues[slot]:
                if self._p_dequeue is not None:
                    self._p_dequeue(node, slot, time)
                pred = state.queues[slot].popleft()
            else:
                return False  # decision not available yet
            state.merge_expect = "back" if ops.truthy(pred) else "entry"
        slots = (sorted(node.back_inputs) if state.merge_expect == "back"
                 else node.entry_slots())
        for index in slots:
            queue = state.queues[index]
            if queue:
                state.merge_expect = None
                if self._p_dequeue is not None:
                    self._p_dequeue(node, index, time)
                value = queue.popleft()
                self._record_fire(node, time)
                self._emit(node, {0: value}, time + latencies.WIRE)
                return True
        return False

    def _record_fire(self, node: N.Node, time: int) -> None:
        """The single source of truth for "this operator fired".

        Every firing path funnels through here: the ``fired`` total,
        ``fire_counts`` (shared with forensics and the trace recorder)
        and the ``fire`` probe all observe the same stream — nothing
        re-derives firing data independently.
        """
        self._fired += 1
        self._fire_counts[node.id] += 1
        if self._p_fire is not None:
            self._p_fire(node, time)

    def _fire_tokengen(self, node: N.TokenGenNode, time: int) -> bool:
        state = self._state[node.id]
        pred_queue, token_queue = state.queues
        while pred_queue or token_queue:
            if token_queue:
                if self._p_dequeue is not None:
                    self._p_dequeue(node, 1, time)
                token_queue.popleft()
                state.tk_credits += 1
            if pred_queue:
                if self._p_dequeue is not None:
                    self._p_dequeue(node, 0, time)
                pred_queue.popleft()
                # Every predicate arrival is one loop-control instance and
                # demands one token: under full predication the final
                # (false) instance still flows through the constrained
                # group's operations, which forward their token without
                # touching memory, and the free group emits a matching
                # final token. The paper instead resets the counter to n on
                # the false predicate; with explicit credits/demands
                # bookkeeping the balance returns to n by itself (T+1
                # demands consume T+1 of the n + T+1 credits), which is
                # robust to the control loop running ahead of the data
                # loops.
                state.tk_demands += 1
            while state.tk_credits > 0 and state.tk_demands > 0:
                state.tk_credits -= 1
                state.tk_demands -= 1
                self._record_fire(node, time)
                self._emit(node, {0: TOKEN}, time + latencies.INT_ALU)
        return False

    def _fire_load(self, node: N.LoadNode, values, time: int) -> bool:
        addr, pred, _token = values
        state = self._state[node.id]
        if not ops.truthy(pred):
            self._skipped += 1
            # Even the instantaneous (skipped) result leaves the operator
            # in order — it must not overtake in-flight earlier accesses.
            done = max(time, state.last_done)
            state.last_done = done
            self._emit(node, {N.LoadNode.VALUE_OUT: 0,
                              N.LoadNode.TOKEN_OUT: TOKEN}, done)
            return True
        self._loads += 1
        value = self.memory.read(int(addr), node.type)
        _, done = self.memsys.issue(time, int(addr), node.width, is_write=False)
        done = max(done, state.last_done)
        state.last_done = done
        self._emit(node, {N.LoadNode.VALUE_OUT: value,
                          N.LoadNode.TOKEN_OUT: TOKEN}, done)
        return True

    def _fire_store(self, node: N.StoreNode, values, time: int) -> bool:
        addr, value, pred, _token = values
        state = self._state[node.id]
        if not ops.truthy(pred):
            self._skipped += 1
            done = max(time, state.last_done)
            state.last_done = done
            self._emit(node, {N.StoreNode.TOKEN_OUT: TOKEN}, done)
            return True
        self._stores += 1
        self.memory.write(int(addr), value, node.type)
        _, done = self.memsys.issue(time, int(addr), node.width, is_write=True)
        done = max(done, state.last_done)
        state.last_done = done
        self._emit(node, {N.StoreNode.TOKEN_OUT: TOKEN}, done)
        return True

    # ------------------------------------------------------------------

    def _evaluate_pure(self, node: N.Node, values: list):
        if isinstance(node, N.BinOpNode):
            try:
                return ops.eval_binop(node.op, node.type, values[0], values[1])
            except SimulationError:
                # Speculated arithmetic (a divide on a not-taken path) must
                # not trap: a hardware divider produces garbage, not an
                # exception. Any predicate guarding the real use of this
                # value is false, so the result is never observed.
                if node.op in ("div", "rem"):
                    return 0
                raise
        if isinstance(node, N.UnOpNode):
            return ops.eval_unop(node.op, node.type, values[0])
        if isinstance(node, N.CastNode):
            return ops.eval_cast(values[0], node.from_type, node.to_type)
        if isinstance(node, N.MuxNode):
            for arm in range(node.arms):
                if ops.truthy(values[2 * arm]):
                    return values[2 * arm + 1]
            return 0  # no predicate true: the value is dead downstream
        raise SimulationError(f"not a pure node: {node!r}")

    def _pure_latency(self, node: N.Node) -> int:
        if isinstance(node, N.BinOpNode):
            return latencies.binop_latency(node.op, node.type)
        if isinstance(node, N.UnOpNode):
            return latencies.unop_latency(node.op, node.type)
        if isinstance(node, N.CastNode):
            return latencies.cast_latency(node.from_type, node.to_type)
        return latencies.WIRE  # mux


def _optional_input(node: N.Node, index: int) -> bool:
    return isinstance(node, N.LoadNode) and index == N.LoadNode.TOKEN_IN
