"""Ahead-of-time simulation plans for Pegasus graphs.

The event-driven interpreter (:mod:`repro.sim.dataflow`) rediscovers the
same structural facts on every event: which node class it is looking at
(an ``isinstance`` chain per firing), who consumes each output (an
:class:`~repro.pegasus.graph.OutPort` construction plus a sorted
``graph.uses()`` lookup per emitted value), which inputs are constant
wires (set lookups per readiness check), and what the operator's latency
is. All of that is a pure function of the graph, so a :class:`SimPlan`
computes it once:

- the **sticky set** (constant wires: const/param/&symbol closed under
  pure arithmetic) plus an evaluation *recipe* — structure is per-graph,
  the values depend on the run's arguments and memory layout and are
  evaluated per run by :meth:`SimPlan.evaluate_sticky`;
- one :class:`NodeSpec` per dynamic node: a kind tag replacing the
  dispatch chain, per-input-slot bindings (queue / prebound sticky value /
  absent-optional token), the folded result latency and a prebound
  evaluator for pure operators, and flat per-output fanout tables of
  ``(consumer id, slot index)`` pairs in the interpreter's delivery order;
- the priming lists (initial tokens, fully-constant strict nodes) and the
  symbol nodes whose objects must be allocated before evaluation.

Plans are cached per graph in :func:`plan_for` — a bounded LRU keyed on
the graph object and validated against ``graph.version`` — so sweeps that
simulate the same compilation many times (fig18/fig19, ablation,
differential checks) plan once, while a graph mutated by a later pass is
transparently re-planned and a long-lived service worker cannot
accumulate unbounded plans (or the codegen modules hanging off them).
The plan holds node references and closures, so it is never
pickled — the persistent compilation cache stores graphs only, and plans
are rebuilt per process (microseconds, amortized over millions of events).

Semantics live in :mod:`repro.sim.engine`; this module only *describes*
the graph. Both must mirror :mod:`repro.sim.dataflow` exactly — the
interpreter remains the executable specification.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import SimulationError
from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.sim import latencies, ops

# Kind tags: one per firing rule in the interpreter's _fire_once.
PURE = "pure"              # binop/unop/cast/mux
ETA = "eta"
COMBINE = "combine"
LOAD = "load"
STORE = "store"
RETURN = "return"
MERGE = "merge"
CTRLSTREAM = "ctrlstream"
TOKENGEN = "tokengen"
INITIAL = "initial"        # emitted at priming; never fires afterwards
BLOCKED = "blocked"        # an unconnected required input: can never fire
UNKNOWN = "unknown"        # unrecognized node class: error only if fired

# Per-slot binding codes.
SLOT_QUEUE = "q"           # consume from the FIFO channel
SLOT_STICKY = "s"          # read the prebound constant wire (aux = node id)
SLOT_ABSENT = "t"          # optional input left unconnected: yields TOKEN

_STICKY_PURE = (N.BinOpNode, N.UnOpNode, N.CastNode, N.MuxNode)


def _is_sticky_port(port, sticky_ids) -> bool:
    # Sticky producers are all single-output kinds, so slot 0 is the only
    # port a sticky node exposes; this mirrors ``port in simulator._sticky``.
    return port.index == 0 and port.node.id in sticky_ids


def _optional_input(node, index: int) -> bool:
    return isinstance(node, N.LoadNode) and index == N.LoadNode.TOKEN_IN


def pure_evaluator(node):
    """A prebound ``values -> result`` mirroring ``_evaluate_pure``."""
    if isinstance(node, N.BinOpNode):
        op, type_ = node.op, node.type
        if op in ("div", "rem"):
            eval_binop = ops.eval_binop

            def evaluate(values):
                # Speculated division must not trap (see _evaluate_pure).
                try:
                    return eval_binop(op, type_, values[0], values[1])
                except SimulationError:
                    return 0
        else:
            eval_binop = ops.eval_binop

            def evaluate(values):
                return eval_binop(op, type_, values[0], values[1])
        return evaluate
    if isinstance(node, N.UnOpNode):
        op, type_ = node.op, node.type
        eval_unop = ops.eval_unop
        return lambda values: eval_unop(op, type_, values[0])
    if isinstance(node, N.CastNode):
        from_type, to_type = node.from_type, node.to_type
        eval_cast = ops.eval_cast
        return lambda values: eval_cast(values[0], from_type, to_type)
    if isinstance(node, N.MuxNode):
        arms = node.arms
        truthy = ops.truthy

        def evaluate(values):
            for arm in range(arms):
                if truthy(values[2 * arm]):
                    return values[2 * arm + 1]
            return 0  # no predicate true: the value is dead downstream
        return evaluate
    raise SimulationError(f"not a pure node: {node!r}")


def _pure_latency(node) -> int:
    if isinstance(node, N.BinOpNode):
        return latencies.binop_latency(node.op, node.type)
    if isinstance(node, N.UnOpNode):
        return latencies.unop_latency(node.op, node.type)
    if isinstance(node, N.CastNode):
        return latencies.cast_latency(node.from_type, node.to_type)
    return latencies.WIRE  # mux


class NodeSpec:
    """Flat firing metadata for one dynamic node."""

    __slots__ = ("node", "id", "kind", "num_outputs", "slots", "oneshot",
                 "primed", "latency", "evaluate", "has_value", "fanout")

    def __init__(self, node):
        self.node = node
        self.id = node.id
        self.kind = UNKNOWN
        self.num_outputs = node.num_outputs
        self.slots: tuple = ()
        # Strict node whose every input is a constant wire (or an absent
        # optional token): fires exactly once, at priming.
        self.oneshot = False
        # Fired at priming time (matches the interpreter's priming loop;
        # includes e.g. merges with all-sticky inputs, which no-op there).
        self.primed = False
        self.latency = 0
        self.evaluate = None
        self.has_value = False
        self.fanout: tuple = ()


class SimPlan:
    """Per-graph compilation of the dataflow firing rules into flat tables."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self.version = graph.version
        self._build_sticky()
        self._build_specs()

    # ------------------------------------------------------------------
    # Sticky wires

    def _build_sticky(self) -> None:
        sticky_ids: set[int] = set()
        recipe: list[tuple] = []  # (node, tag, evaluator|None) in topo order
        for node in self.graph.topological_order():
            if isinstance(node, N.ConstNode):
                tag = "const"
            elif isinstance(node, N.ParamNode):
                tag = "param"
            elif isinstance(node, N.SymbolAddrNode):
                tag = "symbol"
            elif isinstance(node, _STICKY_PURE) and all(
                    p is not None and _is_sticky_port(p, sticky_ids)
                    for p in node.inputs):
                tag = "pure"
            else:
                continue
            sticky_ids.add(node.id)
            recipe.append((node, tag,
                           pure_evaluator(node) if tag == "pure" else None))
        self.sticky_ids = frozenset(sticky_ids)
        self._sticky_recipe = recipe
        # Objects the interpreter allocates while initializing node state,
        # before sticky evaluation runs (in node-id order).
        self.symbol_nodes = self.graph.by_kind(N.SymbolAddrNode)
        self.initial_tokens = self.graph.by_kind(N.InitialTokenNode)

    def evaluate_sticky(self, args: list, memory) -> dict[int, object]:
        """Constant-wire values for one run: ``node id -> value``.

        Mirrors ``DataflowSimulator._compute_sticky`` (same order, same
        allocation sequence, same missing-argument error) but resolves
        structure from the prebuilt recipe.
        """
        values: dict[int, object] = {}
        for node, tag, evaluate in self._sticky_recipe:
            if tag == "const":
                value = node.value
            elif tag == "param":
                if node.index >= len(args):
                    raise SimulationError(
                        f"missing argument for parameter {node.name!r}"
                    )
                value = args[node.index]
            elif tag == "symbol":
                value = memory.allocate(node.symbol)
            else:
                value = evaluate([values[p.node.id] for p in node.inputs])
            values[node.id] = value
        return values

    # ------------------------------------------------------------------
    # Dynamic node specs

    def _build_specs(self) -> None:
        sticky_ids = self.sticky_ids
        specs: list[NodeSpec] = []
        for node in self.graph:  # node-id order, like the priming loop
            if node.id in sticky_ids:
                continue
            spec = NodeSpec(node)
            specs.append(spec)
            if isinstance(node, N.MergeNode):
                spec.kind = MERGE
            elif isinstance(node, N.ControlStreamNode):
                spec.kind = CTRLSTREAM
            elif isinstance(node, N.TokenGenNode):
                spec.kind = TOKENGEN
            elif isinstance(node, _STICKY_PURE):
                spec.kind = PURE
                spec.latency = _pure_latency(node)
                spec.evaluate = pure_evaluator(node)
            elif isinstance(node, N.EtaNode):
                spec.kind = ETA
            elif isinstance(node, N.CombineNode):
                spec.kind = COMBINE
            elif isinstance(node, N.LoadNode):
                spec.kind = LOAD
            elif isinstance(node, N.StoreNode):
                spec.kind = STORE
            elif isinstance(node, N.ReturnNode):
                spec.kind = RETURN
                spec.has_value = node.type is not None
            elif isinstance(node, N.InitialTokenNode):
                spec.kind = INITIAL
            # UNKNOWN kinds stay unknown: the engine raises the
            # interpreter's "cannot fire" error only if one ever fires.
            self._classify_slots(spec, sticky_ids)
            spec.fanout = tuple(
                tuple((use.node.id, use.index)
                      for use in self.graph.uses(OutPort(node, out_index))
                      if use.node.id not in sticky_ids)
                for out_index in range(node.num_outputs)
            )
        self.specs = specs
        self.primed = [spec for spec in specs if spec.primed]

    def _classify_slots(self, spec: NodeSpec, sticky_ids) -> None:
        node = spec.node
        slots = []
        blocked = False
        for index, port in enumerate(node.inputs):
            if port is None:
                if _optional_input(node, index):
                    slots.append((SLOT_ABSENT, None))
                else:
                    blocked = True
                    slots.append((SLOT_QUEUE, None))  # never filled
            elif _is_sticky_port(port, sticky_ids):
                slots.append((SLOT_STICKY, port.node.id))
            else:
                slots.append((SLOT_QUEUE, None))
        spec.slots = tuple(slots)
        strict = spec.kind in (PURE, ETA, COMBINE, LOAD, STORE, RETURN,
                               UNKNOWN)
        if blocked and strict:
            # A required input is unconnected: _input_ready stays false.
            spec.kind = BLOCKED
        # Priming condition — mirrors _all_inputs_constant over the slot
        # codes (merge/ctrlstream/tokengen included; their firing rules
        # simply find empty queues at time 0).
        all_const = bool(node.inputs) and all(
            code != SLOT_QUEUE for code, _ in slots)
        spec.primed = all_const
        spec.oneshot = all_const and strict


# ----------------------------------------------------------------------
# Per-graph cache

#: Most plans a process keeps alive at once. A weak map looks tempting
#: here, but a plan strongly references its graph (``plan.graph``), so a
#: WeakKeyDictionary value pins its own key forever — and the codegen
#: engine hangs a generated module off each plan, so a long-lived
#: ``repro serve`` worker would accumulate one compiled module per graph
#: it ever simulated. A small LRU bounds that: sweeps touch a handful of
#: graphs repeatedly, so 64 is generous. Read dynamically (tests shrink
#: it via monkeypatch).
PLAN_CACHE_LIMIT = 64

_PLANS: "OrderedDict[int, SimPlan]" = OrderedDict()


def plan_for(graph: Graph) -> SimPlan:
    """The (possibly cached) :class:`SimPlan` for ``graph``.

    Cached per graph object (an LRU bounded by :data:`PLAN_CACHE_LIMIT`)
    and invalidated by ``graph.version``, so repeated simulations of one
    compilation share a plan — and its generated codegen module — while
    graphs mutated by optimization passes are re-planned on next use.
    """
    key = id(graph)
    plan = _PLANS.get(key)
    # The identity guard (`plan.graph is graph`) defends against id()
    # reuse after a previously-cached graph was garbage collected.
    if plan is None or plan.graph is not graph \
            or plan.version != graph.version:
        plan = SimPlan(graph)
        _PLANS[key] = plan
        while len(_PLANS) > PLAN_CACHE_LIMIT:
            _PLANS.popitem(last=False)
    else:
        _PLANS.move_to_end(key)
    return plan


def invalidate_plan(graph: Graph) -> None:
    """Drop the cached plan for ``graph`` (mutation done behind its back)."""
    _PLANS.pop(id(graph), None)


def plan_cache_info() -> tuple[int, int]:
    """``(entries, limit)`` of the process-wide plan cache."""
    return len(_PLANS), PLAN_CACHE_LIMIT


def clear_plan_cache() -> None:
    """Empty the plan cache (releases plans and their generated modules)."""
    _PLANS.clear()
