"""Compiled dataflow execution engine.

Executes a :class:`~repro.sim.plan.SimPlan` with the exact semantics of
:class:`~repro.sim.dataflow.DataflowSimulator` — same cycle counts, fire
counts, memory traffic, probe stream, fault-injection draws, and
deadlock/event-limit/wall-limit behavior — at a fraction of the per-event
cost. The interpreter remains the executable specification; this module
is an optimization, and ``tests/sim/test_engine.py`` holds the two to
bit-identical results across the paper's kernels.

Where the time goes, and what the engine does about it:

- **dispatch**: the interpreter walks an ``isinstance`` chain per firing;
  the engine binds one specialized *fire closure* per node up front.
- **delivery**: the interpreter builds an ``OutPort`` and sorts
  ``graph.uses()`` per emitted value; the engine's events carry prebuilt
  fanout lists of ``(queue.append, fire_closure)`` pairs.
- **constants**: sticky inputs are resolved into per-slot prebound values
  when closures are built, so readiness checks touch only real queues.
- **scheduling**: an integer-bucket calendar queue replaces the binary
  heap for near-future events (latencies are small constants, so almost
  every event lands within a few cycles of "now"), spilling to ``heapq``
  for far-future ones.

Observability and fault injection re-specialize the run: with a probe bus
or an injector attached the engine keeps per-event sequence numbers and a
plain heap (reorder keys and the probe contract are defined in terms of
the interpreter's emit order) and the closures invoke the same
``fire``/``emit``/``enqueue``/``dequeue`` hooks with the same None-guard
contract. Without them, closures skip straight to the queues.

The engine exposes the interpreter's introspection surface — ``graph``,
``probes``, ``_state``, ``_sticky``, ``_sticky_nodes``, ``_now``,
``_fired``, ``_events`` — so deadlock forensics
(:func:`repro.resilience.forensics.build_deadlock_report`) works on
either executor unchanged.
"""

from __future__ import annotations

import heapq
import time as _time

from repro.errors import (
    DeadlockError,
    EventLimitError,
    SimulationError,
    SimulationTimeout,
)
from repro.pegasus.graph import Graph, OutPort
from repro.sim import latencies, ops
from repro.sim.dataflow import (
    DEFAULT_EVENT_LIMIT,
    TOKEN,
    DataflowResult,
    _NodeState,
)
from repro.sim.memory_image import MemoryImage
from repro.sim.memsys import MemorySystem, PERFECT_MEMORY
from repro.sim import plan as planmod
from repro.sim.plan import SimPlan, plan_for


class _CalendarQueue:
    """Integer-bucket event queue over a sliding window of cycles.

    One deque per cycle in ``[base, base + width)``; same-cycle events pop
    in push order, which equals the interpreter's sequence order when no
    reordering faults are active. Events beyond the window go to a small
    ``heapq`` overflow keyed ``(time, push order)``; when the window
    drains, it rebases onto the earliest overflow time and migrates the
    next window's worth back into buckets. Rebasing preserves order
    because events are never pushed into the past (all latencies are
    >= 0 and memory completions are monotone per operator), so between
    rebases every same-cycle push lands on the same side of the window
    edge.
    """

    __slots__ = ("width", "base", "cursor", "size", "buckets",
                 "overflow", "_oseq")

    def __init__(self, width: int = 2048):
        self.width = width
        self.base = 0
        self.cursor = 0
        self.size = 0
        self.buckets: list[list] = [[] for _ in range(width)]
        self.overflow: list = []
        self._oseq = 0

    def __len__(self) -> int:
        return self.size + len(self.overflow)

    def reset(self) -> None:
        """Restore the empty initial state.

        Free when the previous run drained the queue (the common case);
        a run abandoned mid-flight (deadlock with events in the window,
        event-limit, timeout) pays one sweep over the buckets. Lets
        batched execution reuse one queue across input contexts instead
        of reallocating ``width`` buckets per context.
        """
        if self.size:
            for bucket in self.buckets:
                del bucket[:]
            self.size = 0
        if self.overflow:
            del self.overflow[:]
        self.base = 0
        self.cursor = 0
        self._oseq = 0

    def push(self, at: int, payload) -> None:
        offset = at - self.base
        if offset < self.width:
            self.buckets[offset].append(payload)
            self.size += 1
        else:
            self._oseq += 1
            heapq.heappush(self.overflow, (at, self._oseq, payload))

    def pop(self):
        """``(time, payload)`` of the earliest event, or ``None``."""
        if self.size:
            buckets = self.buckets
            cursor = self.cursor
            bucket = buckets[cursor]
            while not bucket:
                cursor += 1
                bucket = buckets[cursor]
            self.cursor = cursor
            self.size -= 1
            return self.base + cursor, bucket.pop(0)
        if not self.overflow:
            return None
        # Window empty: rebase onto the earliest far-future event and
        # migrate everything that now fits ((time, push-order) heap order
        # keeps same-cycle FIFO intact).
        overflow = self.overflow
        self.base = overflow[0][0]
        self.cursor = 0
        for bucket in self.buckets:
            del bucket[:]
        limit = self.base + self.width
        while overflow and overflow[0][0] < limit:
            at, _, payload = heapq.heappop(overflow)
            self.buckets[at - self.base].append(payload)
            self.size += 1
        return self.pop()


def _never(time) -> bool:
    return False


class CompiledEngine:
    """Plan-driven executor, drop-in compatible with DataflowSimulator."""

    #: How often (in events) the wall-clock budget is polled.
    WALL_CHECK_INTERVAL = 4096
    #: How many hottest nodes an event-limit overrun reports.
    HOT_NODE_COUNT = 5

    def __init__(self, graph: Graph | SimPlan,
                 memory: MemoryImage | None = None,
                 memsys: MemorySystem | None = None,
                 event_limit: int = DEFAULT_EVENT_LIMIT,
                 faults=None, wall_limit: float | None = None,
                 probes=None):
        plan = graph if isinstance(graph, SimPlan) else plan_for(graph)
        self.plan = plan
        self.graph = plan.graph
        self.memory = memory if memory is not None else MemoryImage()
        self.memsys = memsys or MemorySystem(PERFECT_MEMORY)
        self.event_limit = event_limit
        self.wall_limit = wall_limit
        self.fault_plan = faults
        self._inject = faults.injector() if faults is not None else None
        if self._inject is not None and \
                getattr(self.memsys, "faults", None) is None:
            self.memsys.faults = self._inject
        self.probes = probes
        # Interpreter-compatible introspection surface (forensics).
        self._state: dict[int, _NodeState] = {}
        self._sticky: dict[OutPort, object] = {}
        self._sticky_nodes: set[int] = set(plan.sticky_ids)
        self._scheduler = None
        self._now = 0
        self._fired = 0
        self._loads = 0
        self._stores = 0
        self._skipped = 0
        self._fire_counts: dict[int, int] = {}
        self._done = False
        self._return_value: object = None

    @property
    def _events(self):
        """Pending-event view; truthiness/len match the interpreter's list."""
        scheduler = self._scheduler
        return scheduler if scheduler is not None else []

    def _hottest_nodes(self) -> list[tuple[str, int]]:
        hottest = heapq.nlargest(self.HOT_NODE_COUNT,
                                 self._fire_counts.items(),
                                 key=lambda item: (item[1], -item[0]))
        result = []
        for node_id, count in hottest:
            node = self.graph.nodes.get(node_id)
            label = f"{node.label()}#{node_id}" if node else f"#{node_id}"
            result.append((label, count))
        return result

    # ------------------------------------------------------------------

    def run(self, args: list[object] | None = None) -> DataflowResult:
        """Execute the plan with entry arguments ``args``."""
        args = args if args is not None else []
        plan = self.plan
        graph = self.graph
        memory = self.memory
        memsys = self.memsys
        inject = self._inject
        probes = self.probes
        p_fire = p_emit = p_enqueue = p_dequeue = None
        if probes is not None:
            p_fire = probes.fire
            p_emit = probes.emit
            p_enqueue = probes.enqueue
            p_dequeue = probes.dequeue
            if getattr(memsys, "probes", None) is None:
                memsys.probes = probes

        state = {node.id: _NodeState(node) for node in graph}
        self._state = state
        for node in plan.symbol_nodes:
            memory.allocate(node.symbol)
        sticky = plan.evaluate_sticky(args, memory)
        self._sticky = {OutPort(graph.nodes[nid], 0): value
                        for nid, value in sticky.items()}

        # Instrumented runs need the interpreter's exact emit bookkeeping
        # (sequence numbers feed reorder keys; probe hooks see the same
        # call order); fast runs use the calendar queue with no per-event
        # metadata at all.
        slow = inject is not None or probes is not None
        if slow:
            events: list = []
            heappush = heapq.heappush
            seq_cell = [0]

            def make_send(node):
                nid = node.id
                if inject is not None:
                    reorder_key = inject.reorder_key

                    def send(at, payload):
                        seq_cell[0] += 1
                        seq = seq_cell[0]
                        heappush(events,
                                 (at, reorder_key(nid, at, seq), seq,
                                  node, payload))
                else:
                    def send(at, payload):
                        seq_cell[0] += 1
                        seq = seq_cell[0]
                        heappush(events, (at, seq, seq, node, payload))
                return send

            self._scheduler = events
        else:
            calendar = _CalendarQueue()
            calendar_push = calendar.push

            def make_send(node):
                return calendar_push

            self._scheduler = calendar

        # Shared mutable cells, closed over by the fire closures.
        done = [False]
        retval = [None]
        loads = [0]
        stores = [0]
        skipped = [0]
        counts = {spec.id: [0] for spec in plan.specs}

        fans = {}
        for spec in plan.specs:
            for out_index in range(spec.num_outputs):
                fans[(spec.id, out_index)] = []

        WIRE = latencies.WIRE
        INT_ALU = latencies.INT_ALU
        truthy = ops.truthy

        # --------------------------------------------------------------
        # Fire-closure factory: one specialized closure per dynamic node,
        # each mirroring the corresponding branch of _fire_once.

        def bind(spec):
            node = spec.node
            nid = spec.id
            st = state[nid]
            queues = st.queues
            cell = counts[nid]
            kind = spec.kind

            if kind in (planmod.INITIAL, planmod.BLOCKED):
                return _never

            if kind == planmod.MERGE:
                fan = fans[(nid, 0)]
                send = make_send(node)
                if not node.has_control:
                    scan = list(enumerate(queues))

                    def fire(time):
                        for index, queue in scan:
                            if queue:
                                if p_dequeue is not None:
                                    p_dequeue(node, index, time)
                                value = queue.popleft()
                                cell[0] += 1
                                if p_fire is not None:
                                    p_fire(node, time)
                                at = time + WIRE
                                if p_emit is not None:
                                    p_emit(node, {0: value}, at)
                                send(at, ((fan, value),))
                                return True
                        return False
                    return fire
                control_slot = node.control_slot
                control_port = node.inputs[control_slot]
                control_sticky = (
                    control_port is not None
                    and control_port.index == 0
                    and control_port.node.id in plan.sticky_ids)
                control_value = (sticky[control_port.node.id]
                                 if control_sticky else None)
                control_queue = queues[control_slot]
                back = [(i, queues[i]) for i in sorted(node.back_inputs)]
                entry = [(i, queues[i]) for i in node.entry_slots()]

                def fire(time):
                    expect = st.merge_expect
                    if expect is None:
                        if control_sticky:
                            pred = control_value
                        elif control_queue:
                            if p_dequeue is not None:
                                p_dequeue(node, control_slot, time)
                            pred = control_queue.popleft()
                        else:
                            return False  # decision not available yet
                        expect = "back" if truthy(pred) else "entry"
                        st.merge_expect = expect
                    for index, queue in (back if expect == "back" else entry):
                        if queue:
                            st.merge_expect = None
                            if p_dequeue is not None:
                                p_dequeue(node, index, time)
                            value = queue.popleft()
                            cell[0] += 1
                            if p_fire is not None:
                                p_fire(node, time)
                            at = time + WIRE
                            if p_emit is not None:
                                p_emit(node, {0: value}, at)
                            send(at, ((fan, value),))
                            return True
                    return False
                return fire

            if kind == planmod.CTRLSTREAM:
                fan = fans[(nid, 0)]
                send = make_send(node)
                scan = [(index, queue,
                         1 if index in node.true_slots else 0)
                        for index, queue in enumerate(queues)]

                def fire(time):
                    for index, queue, decision in scan:
                        if queue:
                            if p_dequeue is not None:
                                p_dequeue(node, index, time)
                            queue.popleft()  # the pulse value is irrelevant
                            cell[0] += 1
                            if p_fire is not None:
                                p_fire(node, time)
                            at = time + WIRE
                            if p_emit is not None:
                                p_emit(node, {0: decision}, at)
                            send(at, ((fan, decision),))
                            return True
                    return False
                return fire

            if kind == planmod.TOKENGEN:
                fan = fans[(nid, 0)]
                send = make_send(node)
                pred_queue, token_queue = queues
                payload = ((fan, TOKEN),)

                def fire(time):
                    while pred_queue or token_queue:
                        if token_queue:
                            if p_dequeue is not None:
                                p_dequeue(node, 1, time)
                            token_queue.popleft()
                            st.tk_credits += 1
                        if pred_queue:
                            if p_dequeue is not None:
                                p_dequeue(node, 0, time)
                            pred_queue.popleft()
                            st.tk_demands += 1
                        while st.tk_credits > 0 and st.tk_demands > 0:
                            st.tk_credits -= 1
                            st.tk_demands -= 1
                            cell[0] += 1
                            if p_fire is not None:
                                p_fire(node, time)
                            at = time + INT_ALU
                            if p_emit is not None:
                                p_emit(node, {0: TOKEN}, at)
                            send(at, payload)
                    return False
                return fire

            # Strict kinds: readiness/takes are shared, the action differs.
            template = []
            takes = []  # (values position, queue, input slot) per queue slot
            for index, (code, aux) in enumerate(spec.slots):
                if code == planmod.SLOT_QUEUE:
                    template.append(None)
                    takes.append((index, queues[index], index))
                elif code == planmod.SLOT_STICKY:
                    template.append(sticky[aux])
                else:
                    template.append(TOKEN)
            checks = [queue for _, queue, _ in takes]

            if kind == planmod.PURE:
                evaluate = spec.evaluate
                latency = spec.latency
                fan = fans[(nid, 0)]
                send = make_send(node)

                def fire(time):
                    for queue in checks:
                        if not queue:
                            return False
                    values = list(template)
                    for position, queue, index in takes:
                        if p_dequeue is not None:
                            p_dequeue(node, index, time)
                        values[position] = queue.popleft()
                    cell[0] += 1
                    if p_fire is not None:
                        p_fire(node, time)
                    result = evaluate(values)
                    at = time + latency
                    if p_emit is not None:
                        p_emit(node, {0: result}, at)
                    send(at, ((fan, result),))
                    return True
                return self._oneshot(spec, fire) if spec.oneshot else fire

            if kind == planmod.ETA:
                fan = fans[(nid, 0)]
                send = make_send(node)

                def core(time, values):
                    if truthy(values[1]):  # values[2] is the trigger
                        value = values[0]
                        at = time + WIRE
                        if p_emit is not None:
                            p_emit(node, {0: value}, at)
                        send(at, ((fan, value),))
                    return True
            elif kind == planmod.COMBINE:
                fan = fans[(nid, 0)]
                send = make_send(node)
                payload = ((fan, TOKEN),)

                def core(time, values):
                    at = time + WIRE
                    if p_emit is not None:
                        p_emit(node, {0: TOKEN}, at)
                    send(at, payload)
                    return True
            elif kind == planmod.LOAD:
                value_fan = fans[(nid, 0)]
                token_fan = fans[(nid, 1)]
                send = make_send(node)
                load_type = node.type
                width = node.width
                mem_read = memory.read
                issue = memsys.issue
                fast_issue = memsys.perfect_issue()

                def core(time, values):
                    if truthy(values[1]):
                        loads[0] += 1
                        addr = int(values[0])
                        value = mem_read(addr, load_type)
                        if fast_issue is not None:
                            at = fast_issue(time)
                        else:
                            _, at = issue(time, addr, width, False)
                        if at < st.last_done:
                            at = st.last_done
                    else:
                        skipped[0] += 1
                        value = 0
                        at = time if time > st.last_done else st.last_done
                    st.last_done = at
                    if p_emit is not None:
                        p_emit(node, {0: value, 1: TOKEN}, at)
                    send(at, ((value_fan, value), (token_fan, TOKEN)))
                    return True
            elif kind == planmod.STORE:
                token_fan = fans[(nid, 0)]
                send = make_send(node)
                payload = ((token_fan, TOKEN),)
                store_type = node.type
                width = node.width
                mem_write = memory.write
                issue = memsys.issue
                fast_issue = memsys.perfect_issue()

                def core(time, values):
                    if truthy(values[2]):
                        stores[0] += 1
                        addr = int(values[0])
                        mem_write(addr, values[1], store_type)
                        if fast_issue is not None:
                            at = fast_issue(time)
                        else:
                            _, at = issue(time, addr, width, True)
                        if at < st.last_done:
                            at = st.last_done
                    else:
                        skipped[0] += 1
                        at = time if time > st.last_done else st.last_done
                    st.last_done = at
                    if p_emit is not None:
                        p_emit(node, {0: TOKEN}, at)
                    send(at, payload)
                    return True
            elif kind == planmod.RETURN:
                has_value = spec.has_value

                def core(time, values):
                    done[0] = True
                    retval[0] = values[0] if has_value else None
                    return True
            else:
                def core(time, values):
                    raise SimulationError(f"cannot fire {node!r}")

            def fire(time, core=core):
                for queue in checks:
                    if not queue:
                        return False
                values = list(template)
                for position, queue, index in takes:
                    if p_dequeue is not None:
                        p_dequeue(node, index, time)
                    values[position] = queue.popleft()
                cell[0] += 1
                if p_fire is not None:
                    p_fire(node, time)
                return core(time, values)
            return self._oneshot(spec, fire) if spec.oneshot else fire

        fires = {spec.id: bind(spec) for spec in plan.specs}

        # Resolve fanout tables: deliveries append straight to the
        # consumer's queue and poke its fire closure. Instrumented runs
        # also carry (consumer node, slot) for the enqueue probe.
        for spec in plan.specs:
            for out_index, targets in enumerate(spec.fanout):
                fan = fans[(spec.id, out_index)]
                for consumer_id, slot_index in targets:
                    queue = state[consumer_id].queues[slot_index]
                    if slow:
                        fan.append((queue.append, fires[consumer_id],
                                    graph.nodes[consumer_id], slot_index))
                    else:
                        fan.append((queue.append, fires[consumer_id]))

        # --------------------------------------------------------------
        # Priming: initial tokens at time 0, then fully-constant nodes.

        for node in plan.initial_tokens:
            if p_emit is not None:
                p_emit(node, {0: TOKEN}, 0)
            make_send(node)(0, ((fans[(node.id, 0)], TOKEN),))
        for spec in plan.primed:
            fire = fires[spec.id]
            while fire(0):
                if done[0]:
                    break

        # --------------------------------------------------------------
        # Main loop.

        event_limit = self.event_limit
        wall_limit = self.wall_limit
        wall_interval = self.WALL_CHECK_INTERVAL
        started = _time.monotonic()
        event_count = 0
        now = 0

        def sync():
            self._now = now
            self._fired = sum(cell[0] for cell in counts.values())
            self._loads = loads[0]
            self._stores = stores[0]
            self._skipped = skipped[0]
            self._fire_counts = {nid: cell[0]
                                 for nid, cell in counts.items() if cell[0]}
            self._done = done[0]
            self._return_value = retval[0]

        def overrun():
            sync()
            return EventLimitError(
                f"{graph.name}: event limit exceeded "
                f"({event_limit}) at cycle {now}",
                event_limit, now, hot_nodes=self._hottest_nodes(),
            )

        def timeout(elapsed):
            sync()
            return SimulationTimeout(
                f"{graph.name}: simulation exceeded its "
                f"wall-clock budget at cycle {now}",
                wall_limit, elapsed,
            )

        if slow:
            heappop = heapq.heappop
            while events and not done[0]:
                event_count += 1
                if event_count > event_limit:
                    raise overrun()
                if wall_limit is not None \
                        and event_count % wall_interval == 0:
                    elapsed = _time.monotonic() - started
                    if elapsed > wall_limit:
                        raise timeout(elapsed)
                time, _, _, node, payload = heappop(events)
                if time > now:
                    now = time
                for fan, value in payload:
                    if done[0]:
                        break
                    for entry in fan:
                        entry[0](value)
                        if p_enqueue is not None:
                            p_enqueue(node, entry[2], entry[3], time)
                        fire = entry[1]
                        while fire(time):
                            if done[0]:
                                break
                        if done[0]:
                            break
        else:
            calendar_pop = calendar.pop
            while not done[0]:
                item = calendar_pop()
                if item is None:
                    break
                event_count += 1
                if event_count > event_limit:
                    raise overrun()
                if wall_limit is not None \
                        and event_count % wall_interval == 0:
                    elapsed = _time.monotonic() - started
                    if elapsed > wall_limit:
                        raise timeout(elapsed)
                time, payload = item
                if time > now:
                    now = time
                for fan, value in payload:
                    if done[0]:
                        break
                    for entry in fan:
                        entry[0](value)
                        fire = entry[1]
                        while fire(time):
                            if done[0]:
                                break
                        if done[0]:
                            break

        sync()
        if not done[0]:
            from repro.resilience.forensics import build_deadlock_report
            report = build_deadlock_report(self)
            raise DeadlockError(
                f"{graph.name}: dataflow execution deadlocked",
                self._now, pending=list(report.blocked), report=report,
            )
        return DataflowResult(
            return_value=self._return_value,
            cycles=self._now,
            fired=self._fired,
            loads=self._loads,
            stores=self._stores,
            skipped_memops=self._skipped,
            memory=self.memory,
            memory_stats=self.memsys.stats,
            fire_counts=dict(self._fire_counts),
        )

    @staticmethod
    def _oneshot(spec, fire):
        """Wrap a fully-constant strict node: it fires exactly once."""
        once = [False]

        def fire_once(time):
            if once[0]:
                return False
            once[0] = True
            return fire(time)
        return fire_once
