"""Program-order CFG interpreter.

This is the paper's "traditional implementation which executes the memory
operations in program order" (Figure 10(b)) and the semantic oracle for the
dataflow simulator: any Pegasus optimization that changes the return value
or the final memory image relative to this interpreter is a bug.

The cycle model is deliberately simple and serial: each instruction costs
its operator latency, memory operations additionally pay the memory-system
latency, one instruction completes before the next begins. That is exactly
the in-order, non-overlapped schedule the paper's Figure 10(b) depicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.frontend import ast
from repro.cfg import ir
from repro.cfg.lower import LoweredProgram
from repro.sim import latencies, ops
from repro.sim.memory_image import MemoryImage
from repro.sim.memsys import MemorySystem, PERFECT_MEMORY

DEFAULT_STEP_LIMIT = 50_000_000


@dataclass
class SequentialResult:
    """Outcome of a sequential run."""

    return_value: object
    cycles: int
    instructions: int
    loads: int
    stores: int
    branches: int
    memory: MemoryImage
    # Dynamic instruction count per function name (coverage, Table 2).
    per_function: dict[str, int] = field(default_factory=dict)

    @property
    def memory_operations(self) -> int:
        return self.loads + self.stores


class SequentialInterpreter:
    """Executes lowered functions in program order against a memory image."""

    def __init__(self, program: LoweredProgram, memory: MemoryImage | None = None,
                 memsys: MemorySystem | None = None,
                 step_limit: int = DEFAULT_STEP_LIMIT):
        self.program = program
        self.memory = memory if memory is not None else MemoryImage()
        for symbol in program.globals:
            self.memory.allocate(symbol)
        self.memsys = memsys or MemorySystem(PERFECT_MEMORY)
        self.step_limit = step_limit
        self._steps = 0
        self._cycles = 0
        self._loads = 0
        self._stores = 0
        self._branches = 0
        self._per_function: dict[str, int] = {}

    # ------------------------------------------------------------------

    def run(self, function: str, args: list[object] | None = None) -> SequentialResult:
        """Execute ``function`` with ``args`` and return the result bundle."""
        value = self._call(function, args or [])
        return SequentialResult(
            return_value=value,
            cycles=self._cycles,
            instructions=self._steps,
            loads=self._loads,
            stores=self._stores,
            branches=self._branches,
            memory=self.memory,
            per_function=dict(self._per_function),
        )

    def addr_of(self, name: str) -> int:
        """Address of a global object, for passing pointers as arguments."""
        for symbol in self.program.globals:
            if symbol.name == name:
                return self.memory.allocate(symbol)
        raise SimulationError(f"no global named {name!r}")

    # ------------------------------------------------------------------

    def _call(self, name: str, args: list[object]) -> object:
        func = self.program.functions.get(name)
        if func is None:
            raise SimulationError(f"call to undefined function {name!r}")
        if len(args) != len(func.params):
            raise SimulationError(
                f"{name} expects {len(func.params)} arguments, got {len(args)}"
            )
        for symbol in func.stack_objects:
            self.memory.allocate(symbol)
        regs: dict[ir.Temp, object] = {}
        for (symbol, temp), value in zip(func.params, args):
            regs[temp] = value
        block = func.entry
        assert block is not None
        while True:
            for instr in block.instrs:
                self._steps += 1
                self._per_function[func.name] = self._per_function.get(func.name, 0) + 1
                if self._steps > self.step_limit:
                    raise SimulationError(
                        f"step limit exceeded ({self.step_limit}) in {name}"
                    )
                self._execute(func, instr, regs)
            term = block.terminator
            self._steps += 1  # terminators count too (empty loop bodies!)
            if self._steps > self.step_limit:
                raise SimulationError(
                    f"step limit exceeded ({self.step_limit}) in {name}"
                )
            if isinstance(term, ir.Jump):
                block = term.target
            elif isinstance(term, ir.Branch):
                self._branches += 1
                self._cycles += latencies.INT_ALU
                cond = self._value(regs, term.cond)
                block = term.if_true if ops.truthy(cond) else term.if_false
            elif isinstance(term, ir.Ret):
                if term.value is None:
                    return None
                return self._value(regs, term.value)
            else:
                raise SimulationError(f"block {block.name} has no terminator")

    def _value(self, regs: dict[ir.Temp, object], operand: ir.Operand) -> object:
        if isinstance(operand, ir.Temp):
            if operand not in regs:
                raise SimulationError(f"read of undefined temp {operand}")
            return regs[operand]
        if isinstance(operand, ir.Const):
            return operand.value
        if isinstance(operand, ir.SymAddr):
            return self.memory.allocate(operand.symbol)
        raise SimulationError(f"unknown operand {operand!r}")

    def _execute(self, func: ir.Function, instr: ir.Instr,
                 regs: dict[ir.Temp, object]) -> None:
        if isinstance(instr, ir.Copy):
            regs[instr.dest] = self._value(regs, instr.src)
            self._cycles += latencies.INT_ALU
        elif isinstance(instr, ir.BinOp):
            lhs = self._value(regs, instr.lhs)
            rhs = self._value(regs, instr.rhs)
            regs[instr.dest] = ops.eval_binop(instr.op, instr.type, lhs, rhs)
            self._cycles += latencies.binop_latency(instr.op, instr.type)
        elif isinstance(instr, ir.UnOp):
            value = self._value(regs, instr.src)
            regs[instr.dest] = ops.eval_unop(instr.op, instr.type, value)
            self._cycles += latencies.unop_latency(instr.op, instr.type)
        elif isinstance(instr, ir.CastOp):
            value = self._value(regs, instr.src)
            regs[instr.dest] = ops.eval_cast(value, instr.from_type, instr.to_type)
            self._cycles += latencies.cast_latency(instr.from_type, instr.to_type)
        elif isinstance(instr, ir.Load):
            addr = int(self._value(regs, instr.addr))  # type: ignore[arg-type]
            regs[instr.dest] = self.memory.read(addr, instr.type)
            self._loads += 1
            width = instr.type.size if not instr.type.is_pointer else 8
            self._cycles += self.memsys.access(self._cycles, addr, width,
                                               is_write=False)
        elif isinstance(instr, ir.Store):
            addr = int(self._value(regs, instr.addr))  # type: ignore[arg-type]
            value = self._value(regs, instr.src)
            self.memory.write(addr, value, instr.type)
            self._stores += 1
            width = instr.type.size if not instr.type.is_pointer else 8
            self._cycles += self.memsys.access(self._cycles, addr, width,
                                               is_write=True)
        elif isinstance(instr, ir.Call):
            args = [self._value(regs, a) for a in instr.args]
            result = self._call(instr.callee, args)
            if instr.dest is not None:
                regs[instr.dest] = result
        else:
            raise SimulationError(f"cannot execute {instr!r}")
