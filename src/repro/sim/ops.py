"""Value semantics shared by both interpreters.

All integer arithmetic wraps to the instruction's type (two's complement);
division and remainder truncate toward zero (C99); shift counts are masked
to the type width (the well-defined hardware behaviour — C leaves oversized
shifts undefined, so any choice is conforming); ``float`` arithmetic rounds
results through IEEE binary32.
"""

from __future__ import annotations

import math
import struct

from repro.errors import SimulationError
from repro.frontend import types as ty


def _round_float(value: float, type_: ty.Type) -> float:
    if isinstance(type_, ty.FloatType) and type_.size == 4:
        if math.isinf(value) or math.isnan(value):
            return value
        return struct.unpack("<f", struct.pack("<f", value))[0]
    return value


def eval_binop(op: str, type_: ty.Type, lhs, rhs):
    """Evaluate a binary opcode on Python values, honoring C semantics."""
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        return _compare(op, type_, lhs, rhs)
    if isinstance(type_, ty.FloatType):
        return _float_arith(op, type_, float(lhs), float(rhs))
    return _int_arith(op, type_, int(lhs), int(rhs))


def _compare(op: str, type_: ty.Type, lhs, rhs) -> int:
    if isinstance(type_, ty.IntType):
        lhs = type_.wrap(int(lhs))
        rhs = type_.wrap(int(rhs))
    elif type_.is_pointer:
        lhs = int(lhs) & (2**64 - 1)
        rhs = int(rhs) & (2**64 - 1)
    table = {
        "eq": lhs == rhs, "ne": lhs != rhs,
        "lt": lhs < rhs, "le": lhs <= rhs,
        "gt": lhs > rhs, "ge": lhs >= rhs,
    }
    return 1 if table[op] else 0


def _int_arith(op: str, type_: ty.Type, lhs: int, rhs: int) -> int:
    if not isinstance(type_, ty.IntType):
        # Pointer arithmetic is performed as unsigned 64-bit.
        int_type = ty.ULONG
    else:
        int_type = type_
    lhs = int_type.wrap(lhs)
    rhs = int_type.wrap(rhs)
    if op == "add":
        result = lhs + rhs
    elif op == "sub":
        result = lhs - rhs
    elif op == "mul":
        result = lhs * rhs
    elif op == "div":
        if rhs == 0:
            raise SimulationError("integer division by zero")
        quotient = abs(lhs) // abs(rhs)
        result = quotient if (lhs >= 0) == (rhs >= 0) else -quotient
    elif op == "rem":
        if rhs == 0:
            raise SimulationError("integer remainder by zero")
        remainder = abs(lhs) % abs(rhs)
        result = remainder if lhs >= 0 else -remainder
    elif op == "and":
        result = lhs & rhs
    elif op == "or":
        result = lhs | rhs
    elif op == "xor":
        result = lhs ^ rhs
    elif op == "shl":
        result = lhs << (rhs & (int_type.bits - 1))
    elif op == "shr":
        count = rhs & (int_type.bits - 1)
        if int_type.signed:
            result = lhs >> count  # arithmetic: Python >> sign-extends
        else:
            result = (lhs & ((1 << int_type.bits) - 1)) >> count
    else:
        raise SimulationError(f"unknown integer opcode {op!r}")
    return int_type.wrap(result)


def _float_arith(op: str, type_: ty.FloatType, lhs: float, rhs: float) -> float:
    if op == "add":
        result = lhs + rhs
    elif op == "sub":
        result = lhs - rhs
    elif op == "mul":
        result = lhs * rhs
    elif op == "div":
        if rhs == 0.0:
            result = math.inf if lhs > 0 else (-math.inf if lhs < 0 else math.nan)
        else:
            result = lhs / rhs
    else:
        raise SimulationError(f"invalid float opcode {op!r}")
    return _round_float(result, type_)


def eval_unop(op: str, type_: ty.Type, value):
    if op == "neg":
        if isinstance(type_, ty.FloatType):
            return _round_float(-float(value), type_)
        assert isinstance(type_, ty.IntType)
        return type_.wrap(-int(value))
    if op == "bnot":
        assert isinstance(type_, ty.IntType)
        return type_.wrap(~int(value))
    if op == "lnot":
        return 1 if _is_zero(value) else 0
    raise SimulationError(f"unknown unary opcode {op!r}")


def _is_zero(value) -> bool:
    return value == 0


def eval_cast(value, from_type: ty.Type, to_type: ty.Type):
    """Convert a runtime value between MiniC types."""
    if isinstance(to_type, ty.FloatType):
        return _round_float(float(value), to_type)
    if isinstance(to_type, ty.IntType):
        if isinstance(from_type, ty.FloatType) or isinstance(value, float):
            if math.isnan(value) or math.isinf(value):
                return 0  # C UB; pick a deterministic result
            value = int(value)  # truncate toward zero
        return to_type.wrap(int(value))
    if to_type.is_pointer:
        return int(value) & (2**64 - 1)
    raise SimulationError(f"invalid cast to {to_type}")


def truthy(value) -> bool:
    """Branch/predicate interpretation of a scalar value."""
    return not _is_zero(value)
