"""Per-plan specialized Python code generation — the third engine.

The CompiledEngine (:mod:`repro.sim.engine`) already folded the graph
into flat dispatch tables, but every event still pays Python closure
dispatch: a generic fire closure walks a ``checks`` list, copies a
``template``, loops over ``takes``, and calls a prebound evaluator that
re-dispatches on the opcode string. All of that is a pure function of the
:class:`~repro.sim.plan.SimPlan`, so this module generates one
*specialized Python module per plan* and ``compile()``+``exec``\\ s it:

- each node's fire body is emitted as a flat function from its
  :class:`~repro.sim.plan.NodeSpec` kind tag — readiness checks name the
  exact queues, integer arithmetic is inlined with the type's wrap masks
  as literals, latencies are folded into the ``push`` call;
- fanout tables are emitted as literal tuples of
  ``(queue.append, fire)`` pairs;
- sticky values are prebound as locals of the generated runner;
- per-run state (counters, merge expectations, token credits) lives in
  closure cells reset by the generated ``begin`` preamble on every
  ``run_one`` call, so running N input contexts through one module
  amortizes all construction (:func:`run_batch`).

Generated modules are cached on the plan object, which :func:`plan_for`
keys per ``(graph, graph.version)`` — a version bump re-plans and
therefore re-generates. Set ``$REPRO_CODEGEN_DUMP=<dir>`` to write every
generated module to disk for inspection, or call :func:`source_for`.

Equivalence is the gate: results are bit-identical to the interpreter on
every :class:`~repro.sim.dataflow.DataflowResult` field, the final
memory image, and deadlock/event-limit/wall-limit errors
(``tests/sim/test_engine.py`` enforces it). Instrumented runs — a probe
bus or a fault plan attached — need the interpreter's exact emit
bookkeeping, so constructing a :class:`CodegenEngine` with either
*returns* a :class:`~repro.sim.engine.CompiledEngine` on its heap path
instead (the same rule CompiledEngine applies to its own calendar-queue
fast path).
"""

from __future__ import annotations

import linecache
import os
import re
import time as _time

from repro.errors import (
    DeadlockError,
    EventLimitError,
    SimulationError,
    SimulationTimeout,
)
from repro.frontend import types as ty
from repro.pegasus.graph import OutPort
from repro.sim import latencies, ops
from repro.sim import plan as planmod
from repro.sim.dataflow import (
    DEFAULT_EVENT_LIMIT,
    TOKEN,
    DataflowResult,
    _NodeState,
)
from repro.sim.engine import CompiledEngine, _CalendarQueue, _never
from repro.sim.memsys import MemorySystem, PERFECT_MEMORY
from repro.sim.plan import SimPlan, plan_for

#: Specialized modules generated in this process; tests use the delta to
#: prove that a ``graph.version`` bump invalidates and re-generates.
GENERATION_COUNT = 0

_M64 = (1 << 64) - 1
_COMPARES = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
             "gt": ">", "ge": ">="}
_INT_ARITH = {"add": "+", "sub": "-", "mul": "*",
              "and": "&", "or": "|", "xor": "^"}


def _binop_callable(node):
    """A direct two-argument evaluator for ops the generator won't inline
    (division's trap-to-zero speculation rule, float rounding)."""
    op, type_ = node.op, node.type
    eval_binop = ops.eval_binop
    if op in ("div", "rem"):
        def call(a, b):
            try:
                return eval_binop(op, type_, a, b)
            except SimulationError:
                return 0
    else:
        def call(a, b):
            return eval_binop(op, type_, a, b)
    return call


def _unop_callable(node):
    op, type_ = node.op, node.type
    eval_unop = ops.eval_unop
    return lambda v: eval_unop(op, type_, v)


def _cast_callable(node):
    from_type, to_type = node.from_type, node.to_type
    eval_cast = ops.eval_cast
    return lambda v: eval_cast(v, from_type, to_type)


def _wrap_expr(expr: str, int_type: ty.IntType) -> str:
    mask = (1 << int_type.bits) - 1
    if int_type.signed:
        sign = 1 << (int_type.bits - 1)
        return f"((({expr}) & {mask}) ^ {sign}) - {sign}"
    return f"({expr}) & {mask}"


class _Emitter:
    """Builds the source text of one specialized module."""

    def __init__(self, plan: SimPlan):
        self.plan = plan
        # Consts are unpacked into make_runner locals, so fire bodies
        # reach them through (fast) closure cells rather than globals.
        self.names = ["TOKEN", "_CalendarQueue", "monotonic",
                      "SimulationError", "_never"]
        self.consts: list = [TOKEN, _CalendarQueue, _time.monotonic,
                             SimulationError, _never]
        self.pops: set[tuple[int, int]] = set()   # (node id, slot)
        self.apps: set[tuple[int, int]] = set()
        self.sticky_used: set[int] = set()
        self.cells: list[tuple[str, str]] = []    # (name, reset literal)
        self.count_ids: list[int] = []
        self.sync_lines: list[str] = []
        self.fires: list[list[str]] = []
        self.has_mem = False

    def const(self, name: str, value) -> str:
        self.names.append(name)
        self.consts.append(value)
        return name

    def cell(self, name: str, literal: str) -> str:
        self.cells.append((name, literal))
        return name

    # ------------------------------------------------------------------
    # Per-kind fire bodies

    def emit_spec(self, spec) -> None:
        kind = spec.kind
        if kind in (planmod.INITIAL, planmod.BLOCKED):
            self.fires.append([f"f{spec.id} = _never"])
            return
        if kind == planmod.MERGE:
            body, extra = self._merge_body(spec)
        elif kind == planmod.CTRLSTREAM:
            body, extra = self._ctrlstream_body(spec)
        elif kind == planmod.TOKENGEN:
            body, extra = self._tokengen_body(spec)
        else:
            body, extra = self._strict_body(spec)
        nid = spec.id
        self.count_ids.append(nid)
        self.cell(f"c{nid}", "0")
        nonlocals = sorted({f"c{nid}", *extra})
        lines = [f"def f{nid}(time):",
                 "    nonlocal " + ", ".join(nonlocals)]
        lines += ["    " + line for line in body]
        self.fires.append(lines)

    def _queue(self, nid: int, slot: int) -> str:
        self.pops.add((nid, slot))
        return f"q{nid}_{slot}"

    def _merge_body(self, spec):
        node = spec.node
        nid = spec.id
        body: list[str] = []
        extra: set[str] = set()
        if not node.has_control:
            # Join merge: forward whichever input is present, slot order.
            for index in range(len(node.inputs)):
                queue = self._queue(nid, index)
                kw = "if" if index == 0 else "elif"
                body += [f"{kw} {queue}:",
                         f"    value = pop{nid}_{index}()"]
            body += ["else:", "    return False",
                     f"c{nid} += 1",
                     self._push_line("time", f"((fan{nid}_0, value),)"),
                     "return True"]
            return body, extra
        me = self.cell(f"me{nid}", '"entry"')
        extra.add(me)
        self.sync_lines += [f"st = state[{nid}]",
                            f"st.merge_expect = {me}"]
        control_slot = node.control_slot
        control_port = node.inputs[control_slot]
        control_sticky = (control_port is not None
                          and control_port.index == 0
                          and control_port.node.id in self.plan.sticky_ids)
        body += [f"expect = {me}",
                 "if expect is None:"]
        if control_sticky:
            self.sticky_used.add(control_port.node.id)
            pred = f"s{control_port.node.id}"
            body += [f'    expect = "back" if {pred} != 0 else "entry"',
                     f"    {me} = expect"]
        else:
            queue = self._queue(nid, control_slot)
            body += [f"    if not {queue}:",
                     "        return False",
                     f'    expect = "back" if pop{nid}_{control_slot}()'
                     ' != 0 else "entry"',
                     f"    {me} = expect"]

        def scan(slots: list[int], indent: str) -> list[str]:
            if not slots:
                return [indent + "return False"]
            lines = []
            for pos, index in enumerate(slots):
                queue = self._queue(nid, index)
                kw = "if" if pos == 0 else "elif"
                lines += [f"{indent}{kw} {queue}:",
                          f"{indent}    {me} = None",
                          f"{indent}    value = pop{nid}_{index}()"]
            lines += [f"{indent}else:", f"{indent}    return False"]
            return lines

        body += ['if expect == "back":']
        body += scan(sorted(node.back_inputs), "    ")
        body += ["else:"]
        body += scan(list(node.entry_slots()), "    ")
        body += [f"c{nid} += 1",
                 self._push_line("time", f"((fan{nid}_0, value),)"),
                 "return True"]
        return body, extra

    def _ctrlstream_body(self, spec):
        node = spec.node
        nid = spec.id
        body: list[str] = []
        for index in range(len(node.inputs)):
            queue = self._queue(nid, index)
            decision = 1 if index in node.true_slots else 0
            body += [f"if {queue}:",
                     f"    pop{nid}_{index}()",
                     f"    c{nid} += 1",
                     "    " + self._push_line(
                         "time", f"((fan{nid}_0, {decision}),)"),
                     "    return True"]
        body += ["return False"]
        return body, set()

    def _tokengen_body(self, spec):
        node = spec.node
        nid = spec.id
        kc = self.cell(f"kc{nid}", repr(getattr(node, "count", 0)))
        kd = self.cell(f"kd{nid}", "0")
        self.sync_lines += [f"st = state[{nid}]",
                            f"st.tk_credits = {kc}",
                            f"st.tk_demands = {kd}"]
        pred = self._queue(nid, 0)
        token = self._queue(nid, 1)
        at = self._at_expr("time", latencies.INT_ALU)
        body = [f"while {pred} or {token}:",
                f"    if {token}:",
                f"        pop{nid}_1()",
                f"        {kc} += 1",
                f"    if {pred}:",
                f"        pop{nid}_0()",
                f"        {kd} += 1",
                f"    while {kc} > 0 and {kd} > 0:",
                f"        {kc} -= 1",
                f"        {kd} -= 1",
                f"        c{nid} += 1",
                f"        push({at}, tp{nid})",
                "return False"]
        return body, {kc, kd}

    # ------------------------------------------------------------------
    # Strict kinds

    def _strict_body(self, spec):
        node = spec.node
        nid = spec.id
        kind = spec.kind
        if kind == planmod.PURE:
            used = set(range(len(spec.slots)))
        elif kind == planmod.ETA:
            used = {0, 1}
        elif kind == planmod.LOAD:
            used = {0, 1}
        elif kind == planmod.STORE:
            used = {0, 1, 2}
        elif kind == planmod.RETURN:
            used = {0} if spec.has_value else set()
        else:  # COMBINE, UNKNOWN
            used = set()

        checks: list[str] = []
        takes: list[str] = []
        vals: list[str | None] = []
        for index, (code, aux) in enumerate(spec.slots):
            if code == planmod.SLOT_QUEUE:
                checks.append(f"not {self._queue(nid, index)}")
                if index in used:
                    takes.append(f"v{index} = pop{nid}_{index}()")
                    vals.append(f"v{index}")
                else:
                    takes.append(f"pop{nid}_{index}()")
                    vals.append(None)
            elif code == planmod.SLOT_STICKY:
                self.sticky_used.add(aux)
                vals.append(f"s{aux}")
            else:
                vals.append("TOKEN")

        body: list[str] = []
        extra: set[str] = set()
        if spec.oneshot:
            once = self.cell(f"once{nid}", "False")
            extra.add(once)
            body += [f"if {once}:", "    return False", f"{once} = True"]
        if checks:
            body += [f"if {' or '.join(checks)}:", "    return False"]
        body += takes
        body += [f"c{nid} += 1"]

        if kind == planmod.PURE:
            body += self._pure_result(node, vals)
            at = self._at_expr("time", spec.latency)
            body += [self._push_line(at, f"((fan{nid}_0, result),)"),
                     "return True"]
        elif kind == planmod.ETA:
            body += [f"if {vals[1]} != 0:",
                     "    " + self._push_line(
                         "time", f"((fan{nid}_0, {vals[0]}),)"),
                     "return True"]
        elif kind == planmod.COMBINE:
            body += [self._push_line("time", f"tp{nid}"), "return True"]
        elif kind == planmod.LOAD:
            body += self._load_body(spec, vals, extra)
        elif kind == planmod.STORE:
            body += self._store_body(spec, vals, extra)
        elif kind == planmod.RETURN:
            extra |= {"done", "retval"}
            value = vals[0] if spec.has_value else "None"
            body += ["done = True", f"retval = {value}", "return True"]
        else:  # UNKNOWN: the interpreter's error, only if it ever fires
            nd = self.const(f"nd{nid}", node)
            body += [f'raise SimulationError("cannot fire %r" % ({nd},))']
        return body, extra

    def _load_body(self, spec, vals, extra):
        node = spec.node
        nid = spec.id
        self.has_mem = True
        ld = self.cell(f"ld{nid}", "0")
        extra |= {ld, "loads", "skipped"}
        self.sync_lines += [f"st = state[{nid}]", f"st.last_done = {ld}"]
        type_name = self.const(f"T{nid}", node.type)
        width = int(node.width)
        return [f"if {vals[1]} != 0:",
                "    loads += 1",
                f"    addr = int({vals[0]})",
                f"    value = mem_read(addr, {type_name})",
                "    if fast_issue is not None:",
                "        at = fast_issue(time)",
                "    else:",
                f"        at = issue(time, addr, {width}, False)[1]",
                f"    if at < {ld}:",
                f"        at = {ld}",
                "else:",
                "    skipped += 1",
                "    value = 0",
                f"    at = time if time > {ld} else {ld}",
                f"{ld} = at",
                self._push_line(
                    "at", f"((fan{nid}_0, value), (fan{nid}_1, TOKEN))"),
                "return True"]

    def _store_body(self, spec, vals, extra):
        node = spec.node
        nid = spec.id
        self.has_mem = True
        ld = self.cell(f"ld{nid}", "0")
        extra |= {ld, "stores", "skipped"}
        self.sync_lines += [f"st = state[{nid}]", f"st.last_done = {ld}"]
        type_name = self.const(f"T{nid}", node.type)
        width = int(node.width)
        return [f"if {vals[2]} != 0:",
                "    stores += 1",
                f"    addr = int({vals[0]})",
                f"    mem_write(addr, {vals[1]}, {type_name})",
                "    if fast_issue is not None:",
                "        at = fast_issue(time)",
                "    else:",
                f"        at = issue(time, addr, {width}, True)[1]",
                f"    if at < {ld}:",
                f"        at = {ld}",
                "else:",
                "    skipped += 1",
                f"    at = time if time > {ld} else {ld}",
                f"{ld} = at",
                self._push_line("at", f"tp{nid}"),
                "return True"]

    # ------------------------------------------------------------------
    # Pure arithmetic inlining (mirrors repro.sim.ops exactly)

    def _pure_result(self, node, vals) -> list[str]:
        from repro.pegasus import nodes as N
        if isinstance(node, N.BinOpNode):
            return self._binop_result(node, vals[0], vals[1])
        if isinstance(node, N.UnOpNode):
            return self._unop_result(node, vals[0])
        if isinstance(node, N.CastNode):
            return self._cast_result(node, vals[0])
        # Mux: first true predicate selects its arm; none true -> 0.
        expr = "0"
        for arm in reversed(range(node.arms)):
            expr = f"({vals[2 * arm + 1]} if {vals[2 * arm]} != 0 else {expr})"
        return [f"result = {expr}"]

    def _binop_result(self, node, a: str, b: str) -> list[str]:
        op, type_ = node.op, node.type
        if op in _COMPARES:
            pyop = _COMPARES[op]
            if isinstance(type_, ty.IntType):
                lhs = _wrap_expr(f"int({a})", type_)
                rhs = _wrap_expr(f"int({b})", type_)
            elif type_.is_pointer:
                lhs = f"int({a}) & {_M64}"
                rhs = f"int({b}) & {_M64}"
            else:  # float compares work on the raw values (see _compare)
                lhs, rhs = a, b
            return [f"result = 1 if ({lhs}) {pyop} ({rhs}) else 0"]
        if isinstance(type_, ty.FloatType) or op in ("div", "rem") \
                or (op not in _INT_ARITH and op not in ("shl", "shr")):
            ev = self.const(f"ev{node.id}", _binop_callable(node))
            return [f"result = {ev}({a}, {b})"]
        int_type = type_ if isinstance(type_, ty.IntType) else ty.ULONG
        # Input wraps are algebraically absorbed: +,-,*,&,|,^ and << only
        # depend on the operands mod 2**bits, which the result wrap
        # restores; >> needs the true wrapped lhs and a masked count.
        if op in _INT_ARITH:
            expr = f"int({a}) {_INT_ARITH[op]} int({b})"
            return [f"result = {_wrap_expr(expr, int_type)}"]
        count = f"(int({b}) & {int_type.bits - 1})"
        if op == "shl":
            return [f"result = "
                    f"{_wrap_expr(f'int({a}) << {count}', int_type)}"]
        if int_type.signed:  # shr: arithmetic shift of the wrapped value
            return [f"result = ({_wrap_expr(f'int({a})', int_type)})"
                    f" >> {count}"]
        mask = (1 << int_type.bits) - 1
        return [f"result = (int({a}) & {mask}) >> {count}"]

    def _unop_result(self, node, a: str) -> list[str]:
        op, type_ = node.op, node.type
        if op == "lnot":
            return [f"result = 1 if {a} == 0 else 0"]
        if isinstance(type_, ty.IntType):
            if op == "neg":
                return [f"result = {_wrap_expr(f'-int({a})', type_)}"]
            if op == "bnot":
                return [f"result = {_wrap_expr(f'~int({a})', type_)}"]
        ev = self.const(f"ev{node.id}", _unop_callable(node))
        return [f"result = {ev}({a})"]

    def _cast_result(self, node, a: str) -> list[str]:
        to_type = node.to_type
        if isinstance(to_type, ty.IntType) \
                and not isinstance(node.from_type, ty.FloatType):
            # Int-to-int is the hot case; eval_cast still float-guards the
            # runtime value, so the inline keeps the same dynamic check.
            ev = self.const(f"ev{node.id}", _cast_callable(node))
            wrapped = _wrap_expr(f"int({a})", to_type)
            return [f"result = ({ev}({a}) if isinstance({a}, float)"
                    f" else {wrapped})"]
        if not isinstance(to_type, (ty.IntType, ty.FloatType)) \
                and to_type.is_pointer:
            return [f"result = int({a}) & {_M64}"]
        ev = self.const(f"ev{node.id}", _cast_callable(node))
        return [f"result = {ev}({a})"]

    # ------------------------------------------------------------------

    @staticmethod
    def _at_expr(time: str, latency: int) -> str:
        return time if latency == 0 else f"{time} + {latency}"

    @staticmethod
    def _push_line(at: str, payload: str) -> str:
        return f"push({at}, {payload})"

    # ------------------------------------------------------------------
    # Assembly

    def render(self) -> str:
        plan = self.plan
        for spec in plan.specs:
            self.emit_spec(spec)

        fan_lines: list[str] = []
        token_payloads = (planmod.COMBINE, planmod.STORE, planmod.TOKENGEN,
                          planmod.INITIAL)
        for spec in plan.specs:
            for out_index, targets in enumerate(spec.fanout):
                entries = []
                for consumer_id, slot in targets:
                    self.apps.add((consumer_id, slot))
                    entries.append(f"(app{consumer_id}_{slot}, "
                                   f"f{consumer_id})")
                tail = "," if len(entries) == 1 else ""
                fan_lines.append(f"fan{spec.id}_{out_index} = "
                                 f"({', '.join(entries)}{tail})")
            if spec.kind in token_payloads:
                fan_lines.append(f"tp{spec.id} = ((fan{spec.id}_0, TOKEN),)")

        lines: list[str] = [
            f"# Specialized runner for {plan.graph.name!r} "
            f"(version {plan.version}); generated by repro.sim.codegen.",
            "def make_runner(state, C):",
        ]
        for chunk in _chunks(self.names, 6):
            prefix = "    (" if chunk[0] == self.names[0] else "     "
            lines.append(prefix + ", ".join(chunk) + ",")
        lines[-1] += ") = C"

        bound = sorted(self.pops | self.apps)
        for nid, slot in bound:
            lines.append(f"    q{nid}_{slot} = state[{nid}].queues[{slot}]")
            if (nid, slot) in self.pops:
                lines.append(f"    pop{nid}_{slot} = q{nid}_{slot}.popleft")
            if (nid, slot) in self.apps:
                lines.append(f"    app{nid}_{slot} = q{nid}_{slot}.append")

        run_cells = [("done", "False"), ("retval", "None"), ("loads", "0"),
                     ("stores", "0"), ("skipped", "0"), ("push", "None")]
        if self.has_mem:
            run_cells += [("mem_read", "None"), ("mem_write", "None"),
                          ("issue", "None"), ("fast_issue", "None")]
        sticky_cells = [(f"s{sid}", "None")
                        for sid in sorted(self.sticky_used)]
        all_cells = run_cells + sticky_cells + self.cells
        for name, literal in all_cells:
            lines.append(f"    {name} = {literal}")
        lines.append("")

        for fire in self.fires:
            lines += ["    " + line for line in fire]
            lines.append("")
        for fan in fan_lines:
            lines.append("    " + fan)
        lines.append("")

        lines.append("    def collect():")
        lines.append("        counts = {}")
        for nid in self.count_ids:
            lines += [f"        if c{nid}:",
                      f"            counts[{nid}] = c{nid}"]
        lines.append("        return loads, stores, skipped, counts")
        lines.append("")

        lines.append("    def sync_state():")
        if self.sync_lines:
            lines += ["        " + line for line in self.sync_lines]
        else:
            lines.append("        pass")
        lines.append("")

        # The context reset + priming preamble lives in its own closure:
        # it touches every cell, queue, and primed fire, so its frame has
        # thousands of slots (tens of KB) — comparable to CPython's data
        # stack chunk. Were it part of ``run_one``, the event loop's
        # frame could land at a chunk boundary and every fire-closure
        # call would then allocate (mmap) and free a fresh chunk — a
        # deterministic ~20x slowdown dependent on caller stack depth.
        # ``begin`` pushes that big frame exactly once per context and
        # pops it before the loop starts; ``run_one`` itself keeps a
        # handful of slots.
        lines.append("    calendar = _CalendarQueue()")
        lines.append("    def begin(memory, memsys, sticky):")
        cell_names = [name for name, _ in all_cells]
        for chunk in _chunks(cell_names, 8):
            lines.append("        nonlocal " + ", ".join(chunk))
        for name, literal in run_cells:
            if name == "push":
                continue
            if name == "mem_read":
                lines += ["        mem_read = memory.read",
                          "        mem_write = memory.write",
                          "        issue = memsys.issue",
                          "        fast_issue = memsys.perfect_issue()"]
                break
            lines.append(f"        {name} = {literal}")
        else:
            pass
        if not self.has_mem:
            # run_cells loop above emitted every reset already.
            pass
        for sid in sorted(self.sticky_used):
            lines.append(f"        s{sid} = sticky[{sid}]")
        for name, literal in self.cells:
            lines.append(f"        {name} = {literal}")
        for nid, slot in bound:
            if (nid, slot) in self.apps:
                lines.append(f"        q{nid}_{slot}.clear()")
        lines += ["        calendar.reset()",
                  "        push = calendar.push"]

        # Priming: initial tokens at time 0, then fully-constant nodes
        # (same order and done-checks as the interpreter's priming loop).
        for node in plan.initial_tokens:
            lines.append(f"        push(0, tp{node.id})")
        for spec in plan.primed:
            lines += [f"        while f{spec.id}(0):",
                      "            if done:",
                      "                break"]
        lines.append("        return calendar")
        lines.append("")

        lines += [
            "    def run_one(memory, memsys, sticky, "
            "event_limit, wall_limit):",
            "        calendar = begin(memory, memsys, sticky)",
            "        pop = calendar.pop",
            "        event_count = 0",
            "        now = 0",
            "        started = monotonic()",
            "        while not done:",
            "            item = pop()",
            "            if item is None:",
            "                break",
            "            event_count += 1",
            "            if event_count > event_limit:",
            '                return ("event-limit", now, event_count, '
            "calendar)",
            "            if wall_limit is not None "
            f"and not event_count % {CompiledEngine.WALL_CHECK_INTERVAL}:",
            "                elapsed = monotonic() - started",
            "                if elapsed > wall_limit:",
            '                    return ("timeout", now, elapsed, calendar)',
            "            time, payload = item",
            "            if time > now:",
            "                now = time",
            "            for fan, value in payload:",
            "                if done:",
            "                    break",
            "                for app_fire in fan:",
            "                    app_fire[0](value)",
            "                    fire = app_fire[1]",
            "                    while fire(time):",
            "                        if done:",
            "                            break",
            "                    if done:",
            "                        break",
            "        if not done:",
            '            return ("deadlock", now, None, calendar)',
            '        return ("done", now, retval, calendar)',
            "",
            "    return run_one, collect, sync_state",
        ]
        return "\n".join(lines) + "\n"


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


# ----------------------------------------------------------------------


class GeneratedModule:
    """One compiled specialized module, cached on its plan."""

    def __init__(self, plan: SimPlan):
        global GENERATION_COUNT
        GENERATION_COUNT += 1
        emitter = _Emitter(plan)
        self.source = emitter.render()
        self.consts = tuple(emitter.consts)
        self.filename = f"<codegen:{plan.graph.name}@v{plan.version}>"
        dump_dir = os.environ.get("REPRO_CODEGEN_DUMP")
        if dump_dir:
            os.makedirs(dump_dir, exist_ok=True)
            slug = re.sub(r"[^\w.-]", "_",
                          f"{plan.graph.name}-v{plan.version}")
            with open(os.path.join(dump_dir, f"{slug}.py"), "w") as handle:
                handle.write(self.source)
        # Register with linecache so tracebacks show generated lines.
        linecache.cache[self.filename] = (
            len(self.source), None, self.source.splitlines(True),
            self.filename)
        namespace: dict = {}
        exec(compile(self.source, self.filename, "exec"), namespace)
        self._factory = namespace["make_runner"]

    def make_runner(self, state):
        """Instantiate ``(run_one, collect, sync_state)`` over ``state``."""
        return self._factory(state, self.consts)


def generated_for(plan: SimPlan) -> GeneratedModule:
    """The (cached) generated module for ``plan``.

    Cached on the plan object itself, which :func:`plan_for` keys per
    ``(graph, graph.version)`` — so a version bump re-plans and
    re-generates, and the bounded plan cache evicts the module with its
    plan (no per-historical-version accumulation in long-lived workers).
    """
    gen = getattr(plan, "_codegen", None)
    if gen is None:
        gen = GeneratedModule(plan)
        plan._codegen = gen
    return gen


def source_for(graph_or_plan) -> str:
    """The generated source text (debugging aid; see also
    ``$REPRO_CODEGEN_DUMP``)."""
    plan = (graph_or_plan if isinstance(graph_or_plan, SimPlan)
            else plan_for(graph_or_plan))
    return generated_for(plan).source


# ----------------------------------------------------------------------


class CodegenEngine(CompiledEngine):
    """Executor running the plan's generated module.

    Drop-in compatible with :class:`~repro.sim.engine.CompiledEngine`
    (same constructor, introspection surface, errors, and bit-identical
    results). Instrumented runs need the interpreter's exact emit
    bookkeeping, so constructing this class with ``probes`` or ``faults``
    transparently returns a ``CompiledEngine`` on its heap path instead.
    """

    def __new__(cls, graph, memory=None, memsys=None,
                event_limit=DEFAULT_EVENT_LIMIT, faults=None,
                wall_limit=None, probes=None):
        if faults is not None or probes is not None:
            return CompiledEngine(graph, memory=memory, memsys=memsys,
                                  event_limit=event_limit, faults=faults,
                                  wall_limit=wall_limit, probes=probes)
        return object.__new__(cls)

    def run(self, args: list[object] | None = None) -> DataflowResult:
        state = {node.id: _NodeState(node) for node in self.graph}
        runner = generated_for(self.plan).make_runner(state)
        return self._execute(state, runner, args)

    def _execute(self, state, runner, args) -> DataflowResult:
        """Run one input context through an instantiated runner."""
        args = args if args is not None else []
        graph = self.graph
        plan = self.plan
        memory = self.memory
        self._state = state
        for node in plan.symbol_nodes:
            memory.allocate(node.symbol)
        sticky = plan.evaluate_sticky(args, memory)
        self._sticky = {OutPort(graph.nodes[nid], 0): value
                        for nid, value in sticky.items()}
        run_one, collect, sync_state = runner
        kind, now, extra, calendar = run_one(
            memory, self.memsys, sticky, self.event_limit, self.wall_limit)
        sync_state()
        loads, stores, skipped, fire_counts = collect()
        self._scheduler = calendar
        self._now = now
        self._fired = sum(fire_counts.values())
        self._loads = loads
        self._stores = stores
        self._skipped = skipped
        self._fire_counts = fire_counts
        self._done = kind == "done"
        self._return_value = extra if kind == "done" else None
        if kind == "event-limit":
            raise EventLimitError(
                f"{graph.name}: event limit exceeded "
                f"({self.event_limit}) at cycle {now}",
                self.event_limit, now, hot_nodes=self._hottest_nodes(),
            )
        if kind == "timeout":
            raise SimulationTimeout(
                f"{graph.name}: simulation exceeded its "
                f"wall-clock budget at cycle {now}",
                self.wall_limit, extra,
            )
        if kind == "deadlock":
            from repro.resilience.forensics import build_deadlock_report
            report = build_deadlock_report(self)
            raise DeadlockError(
                f"{graph.name}: dataflow execution deadlocked",
                now, pending=list(report.blocked), report=report,
            )
        return DataflowResult(
            return_value=self._return_value,
            cycles=now,
            fired=self._fired,
            loads=loads,
            stores=stores,
            skipped_memops=skipped,
            memory=memory,
            memory_stats=self.memsys.stats,
            fire_counts=dict(fire_counts),
        )


# ----------------------------------------------------------------------


def run_batch(plan, arg_sets, *, memories=None, systems=None,
              event_limit: int = DEFAULT_EVENT_LIMIT,
              wall_limit: float | None = None, faults=None,
              return_exceptions: bool = False, on_result=None) -> list:
    """Run N input contexts through one generated module in a single pass.

    The runner (queues, fire functions, fanout tuples) is instantiated
    once and reset per context by the generated ``run_one``, amortizing
    construction, scheduling, and priming overhead across the batch —
    figure sweeps, the ablation grid, and the differential fault matrix
    are embarrassingly batchable.

    ``memories`` is one :class:`~repro.sim.memory_image.MemoryImage` per
    context (fresh images by default). ``systems`` is either one
    :class:`~repro.sim.memsys.MemorySystem` shared across contexts —
    :meth:`~repro.sim.memsys.MemorySystem.reset` restores cold state
    between contexts, bit-identical to a fresh system per context — or a
    list with one (fresh) system per context. Contexts with an entry in
    ``faults`` transparently delegate to ``CompiledEngine``'s
    instrumented heap path on a fresh memory system, preserving seeded
    fault trajectories exactly. With ``return_exceptions``, a failing
    context contributes its exception instead of aborting the batch.
    ``on_result(index, result)`` is invoked per successful context (the
    telemetry hook of ``CompiledProgram.simulate_batch``).
    """
    from repro.sim.memory_image import MemoryImage

    plan = plan if isinstance(plan, SimPlan) else plan_for(plan)
    arg_sets = [list(args or []) for args in arg_sets]
    count = len(arg_sets)
    if memories is None:
        memories = [MemoryImage() for _ in range(count)]
    shared = None
    if systems is None:
        shared = MemorySystem(PERFECT_MEMORY)
    elif isinstance(systems, MemorySystem):
        shared = systems
    fault_list = list(faults) if faults is not None else [None] * count
    if len(fault_list) != count:
        raise ValueError("faults must provide one entry per context")

    state = None
    runner = None
    results: list = []
    seen_systems: set[int] = set()
    for index, args in enumerate(arg_sets):
        fault_plan = fault_list[index]
        if shared is not None:
            if fault_plan is not None:
                # Fresh system: the delegate attaches its injector to the
                # memsys, which must not leak into later contexts.
                system = MemorySystem(shared.config)
            else:
                if index:
                    shared.reset()
                system = shared
        else:
            system = systems[index]
            if fault_plan is not None:
                # Same injector-isolation rule as the shared path — the
                # list entry may be shared with later clean contexts.
                system = MemorySystem(system.config)
            elif id(system) in seen_systems:
                # A deduplicated entry (one system per distinct config):
                # reset restores cold state, bit-identical to fresh.
                system.reset()
            else:
                seen_systems.add(id(system))
        try:
            if fault_plan is not None:
                engine = CompiledEngine(
                    plan, memory=memories[index], memsys=system,
                    event_limit=event_limit, faults=fault_plan,
                    wall_limit=wall_limit)
                result = engine.run(args)
            else:
                if runner is None:
                    state = {node.id: _NodeState(node)
                             for node in plan.graph}
                    runner = generated_for(plan).make_runner(state)
                engine = CodegenEngine(
                    plan, memory=memories[index], memsys=system,
                    event_limit=event_limit, wall_limit=wall_limit)
                result = engine._execute(state, runner, args)
        except Exception as error:  # noqa: BLE001 — caller opted in
            if not return_exceptions:
                raise
            results.append(error)
            continue
        results.append(result)
        if on_result is not None:
            on_result(index, result)
    return results
