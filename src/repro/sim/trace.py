"""Execution tracing: what fired when, rendered as a text timeline.

Spatial programs are circuits; understanding a performance result means
seeing which operators were busy in which cycles. :class:`TraceRecorder`
subscribes to a :class:`~repro.observe.probes.ProbeBus` on a
:class:`~repro.sim.dataflow.DataflowSimulator` and records every firing;
:func:`render_timeline` draws a compact per-node activity strip, and
:func:`busiest_nodes` ranks operators by activity — typically the
loop-carried recurrence shows up immediately as the densest strip.

Example::

    recorder = TraceRecorder.attach(simulator)
    result = simulator.run(args)
    print(render_timeline(recorder, simulator.graph, width=72))

Historical note: the recorder used to monkey-patch the simulator's
internal firing paths and deduplicate events against the previous entry,
which silently dropped a legitimate second firing of the same node in
the same cycle (a pipelined operator draining two queued values). The
probe bus delivers exactly one ``fire`` event per firing, so every
firing — including same-node same-cycle re-fires — is recorded, and the
recorder's counts are the *same* counter backing
``DataflowResult.fire_counts`` rather than an independent re-derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observe.probes import ProbeBus
from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N
from repro.sim.dataflow import DataflowSimulator


@dataclass
class TraceRecorder:
    """Collects (node id, fire time) events from one simulation."""

    events: list[tuple[int, int]] = field(default_factory=list)
    # Shared with the simulator after attach(): the one probe-backed
    # firing counter (also returned as DataflowResult.fire_counts).
    fire_counts: dict[int, int] = field(default_factory=dict)

    @classmethod
    def attach(cls, simulator: DataflowSimulator) -> "TraceRecorder":
        """Subscribe a recorder to ``simulator``'s probe bus.

        Creates the bus if the simulator has none. Must be called before
        ``simulator.run()``.
        """
        recorder = cls()
        if simulator.probes is None:
            simulator.probes = ProbeBus()
        simulator.probes.subscribe(recorder)
        recorder.fire_counts = simulator._fire_counts
        return recorder

    def on_fire(self, node: N.Node, time: int) -> None:
        self.events.append((node.id, time))

    def counts(self) -> dict[int, int]:
        """Firings per node id — the shared counter when attached, else
        derived from the recorded events."""
        if self.fire_counts:
            return self.fire_counts
        counts: dict[int, int] = {}
        for node_id, _ in self.events:
            counts[node_id] = counts.get(node_id, 0) + 1
        return counts

    @property
    def span(self) -> tuple[int, int]:
        if not self.events:
            return (0, 0)
        times = [t for _, t in self.events]
        return (min(times), max(times))


def busiest_nodes(recorder: TraceRecorder, graph: Graph,
                  top: int = 10) -> list[tuple[N.Node, int]]:
    """Nodes ranked by firing count, busiest first."""
    counts = recorder.counts()
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [(graph.nodes[node_id], count)
            for node_id, count in ranked[:top] if node_id in graph.nodes]


def render_timeline(recorder: TraceRecorder, graph: Graph,
                    width: int = 64, top: int = 12) -> str:
    """A per-node activity strip over the simulated interval.

    Each row is one of the busiest nodes; each column a time bucket;
    the glyph encodes how many firings landed in the bucket
    (``.`` none, ``-`` one, ``=`` a few, ``#`` many).
    """
    start, end = recorder.span
    if end <= start:
        return "(no events)"
    bucket_span = max(1, (end - start + 1) // width)
    per_node: dict[int, list[int]] = {}
    for node_id, time in recorder.events:
        buckets = per_node.setdefault(node_id, [0] * (width + 1))
        index = min((time - start) // bucket_span, width)
        buckets[index] += 1

    lines = [f"timeline: cycles {start}..{end}, "
             f"{bucket_span} cycle(s) per column"]
    for node, _count in busiest_nodes(recorder, graph, top):
        buckets = per_node.get(node.id, [])
        strip = "".join(_glyph(b) for b in buckets[:width])
        label = f"{node.label()}#{node.id}"
        lines.append(f"{label:>18s} |{strip}|")
    return "\n".join(lines)


def _glyph(count: int) -> str:
    if count == 0:
        return "."
    if count == 1:
        return "-"
    if count <= 4:
        return "="
    return "#"
