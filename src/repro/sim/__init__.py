"""Execution substrates.

Two interpreters share one definition of operation semantics (``ops``) and
one memory model (``memory_image``):

- :mod:`repro.sim.sequential` executes the three-address CFG in program
  order — the paper's Figure 10(b) "traditional implementation" and the
  semantic oracle for differential testing;
- :mod:`repro.sim.dataflow` executes a Pegasus graph with asynchronous
  dataflow (spatial) semantics, timing memory accesses through the
  hierarchy in :mod:`repro.sim.memsys` (§7.3).

The dataflow semantics have two executors: the interpreter above (the
executable specification) and the compiled engine in
:mod:`repro.sim.engine`, which runs a per-graph
:class:`~repro.sim.plan.SimPlan` of prebound fire closures and flat
fanout tables for the same results at a fraction of the per-event cost.
"""

from repro.sim.memory_image import MemoryImage
from repro.sim.sequential import SequentialInterpreter, SequentialResult
from repro.sim.dataflow import DataflowSimulator, DataflowResult
from repro.sim.engine import CompiledEngine
from repro.sim.plan import SimPlan, plan_for
from repro.sim.memsys import MemorySystem, MemoryConfig, PERFECT_MEMORY, REALISTIC_MEMORY

__all__ = [
    "MemoryImage",
    "SequentialInterpreter",
    "SequentialResult",
    "DataflowSimulator",
    "DataflowResult",
    "CompiledEngine",
    "SimPlan",
    "plan_for",
    "MemorySystem",
    "MemoryConfig",
    "PERFECT_MEMORY",
    "REALISTIC_MEMORY",
]
