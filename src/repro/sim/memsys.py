"""The memory-system timing model of §7.3.

The paper evaluates "several memory systems, ranging from perfect memory to
a realistic memory system with two levels of cache":

- all memory operations enter a load-store queue with a finite number of
  ports and finite size;
- L1: 8 KB, 2-cycle hit; L2: 256 KB, 8-cycle hit;
- main memory: 72-cycle latency, 4 cycles between consecutive words,
  dual-ported;
- data TLB: 64 pages, 30-cycle miss.

Timing is modeled, contents are not: the functional value of every access
comes from the :class:`~repro.sim.memory_image.MemoryImage`; this module
only answers "when does this access complete?". Caches are line-grained
LRU; stores are write-allocate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MemoryConfig:
    """Parameters for one memory-system configuration."""

    name: str
    perfect: bool = False
    perfect_latency: int = 1
    lsq_entries: int = 32
    lsq_ports: int = 2
    l1_size: int = 8 * 1024
    l1_line: int = 32
    l1_assoc: int = 2
    l1_hit: int = 2
    l2_size: int = 256 * 1024
    l2_line: int = 32
    l2_assoc: int = 4
    l2_hit: int = 8
    mem_latency: int = 72
    mem_word_interval: int = 4
    mem_ports: int = 2
    tlb_entries: int = 64
    page_size: int = 4096
    tlb_miss: int = 30

    def with_ports(self, ports: int) -> "MemoryConfig":
        return replace(self, name=f"{self.name}-{ports}port", lsq_ports=ports)


PERFECT_MEMORY = MemoryConfig(name="perfect", perfect=True)
REALISTIC_MEMORY = MemoryConfig(name="realistic")
# The bandwidth sweep of Figure 19's rightmost bars.
REALISTIC_1PORT = REALISTIC_MEMORY.with_ports(1)
REALISTIC_2PORT = REALISTIC_MEMORY.with_ports(2)
REALISTIC_4PORT = REALISTIC_MEMORY.with_ports(4)

#: Every memory system addressable by name — the single registry behind
#: the CLI ``--memory`` choices and the service protocol's ``memsys``
#: request field.
NAMED_SYSTEMS: dict[str, MemoryConfig] = {
    "perfect": PERFECT_MEMORY,
    "realistic": REALISTIC_MEMORY,
    "realistic-1port": REALISTIC_1PORT,
    "realistic-2port": REALISTIC_2PORT,
    "realistic-4port": REALISTIC_4PORT,
}


def named_system(name: str) -> MemoryConfig:
    """Resolve a memory-system name; raises ``KeyError`` with choices."""
    try:
        return NAMED_SYSTEMS[name]
    except KeyError:
        raise KeyError(f"unknown memory system {name!r} "
                       f"(one of {sorted(NAMED_SYSTEMS)})") from None


class _Cache:
    """A set-associative, line-grained LRU cache (timing only)."""

    def __init__(self, size: int, line: int, assoc: int):
        self.line = line
        self.assoc = assoc
        self.sets = max(1, size // (line * assoc))
        self._lines: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.sets)
        ]

    def lookup(self, addr: int) -> bool:
        """Probe (and on miss, fill) the line holding ``addr``."""
        tag = addr // self.line
        bucket = self._lines[tag % self.sets]
        if tag in bucket:
            bucket.move_to_end(tag)
            return True
        bucket[tag] = None
        if len(bucket) > self.assoc:
            bucket.popitem(last=False)
        return False

    def reset(self) -> None:
        for bucket in self._lines:
            bucket.clear()


class _Tlb:
    def __init__(self, entries: int, page_size: int):
        self.entries = entries
        self.page_size = page_size
        self._pages: OrderedDict[int, None] = OrderedDict()

    def lookup(self, addr: int) -> bool:
        page = addr // self.page_size
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False


@dataclass
class MemoryStats:
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    mem_accesses: int = 0
    tlb_misses: int = 0
    port_stall_cycles: int = 0
    # Extra cycles added by deterministic fault injection (latency jitter
    # and spikes + LSQ stall windows); zero when no injector is attached.
    injected_cycles: int = 0


class MemorySystem:
    """Stateful timing model; both interpreters share this interface.

    :meth:`issue` answers the dataflow simulator: given an arrival time it
    returns (start, completion), modeling LSQ port contention and DRAM port
    contention. :meth:`access` is the serialized convenience wrapper used by
    the sequential interpreter.
    """

    def __init__(self, config: MemoryConfig, faults=None, probes=None):
        self.config = config
        self.stats = MemoryStats()
        # Optional deterministic fault injector (duck-typed: a
        # resilience.faults.FaultInjector). Timing-only: adds cycles to
        # hierarchy levels and LSQ acquisition, never touches values.
        self.faults = faults
        # Optional observe.probes.ProbeBus; the dataflow simulator shares
        # its bus here so mem_access/lsq hooks see every access.
        self.probes = probes
        self._l1 = _Cache(config.l1_size, config.l1_line, config.l1_assoc)
        self._l2 = _Cache(config.l2_size, config.l2_line, config.l2_assoc)
        self._tlb = _Tlb(config.tlb_entries, config.page_size)
        # Earliest time each LSQ port / memory port is free again.
        self._lsq_free = [0] * max(1, config.lsq_ports)
        self._mem_free = [0] * max(1, config.mem_ports)
        # Completion times of in-flight operations, bounding LSQ occupancy.
        self._inflight: list[int] = []

    # ------------------------------------------------------------------

    def issue(self, now: int, addr: int, width: int, is_write: bool) -> tuple[int, int]:
        """Schedule an access arriving at ``now``; return (start, done)."""
        self.stats.accesses += 1
        if self.config.perfect:
            extra = self._injected("perfect")
            done = now + self.config.perfect_latency + extra
            if self.probes is not None and self.probes.mem_access is not None:
                self.probes.mem_access(now, now, done, addr, width, is_write,
                                       "perfect", False)
            return now, done
        start = self._acquire_lsq(now)
        latency, level, tlb_miss = self._latency(start, addr, width)
        done = start + latency
        self._inflight.append(done)
        if self.probes is not None and self.probes.mem_access is not None:
            self.probes.mem_access(now, start, done, addr, width, is_write,
                                   level, tlb_miss)
        return start, done

    def perfect_issue(self):
        """A prebound ``now -> done`` fast path for perfect memory.

        Perfect memory with no faults and no probes reduces :meth:`issue`
        to ``done = now + perfect_latency`` plus the access counter; the
        compiled engine binds the returned callable into its load/store
        closures so the hot path skips the hierarchy bookkeeping and the
        probe/fault guards entirely. Returns ``None`` whenever the full
        :meth:`issue` semantics are needed (realistic hierarchy, an
        injector, or a subscribed probe bus) — callers must re-request it
        after attaching either.
        """
        if not self.config.perfect or self.faults is not None \
                or self.probes is not None:
            return None
        stats = self.stats
        latency = self.config.perfect_latency

        def issue(now: int) -> int:
            stats.accesses += 1
            return now + latency
        return issue

    def _injected(self, level: str) -> int:
        if self.faults is None:
            return 0
        extra = self.faults.memory_extra(level)
        self.stats.injected_cycles += extra
        return extra

    def access(self, now: int, addr: int, width: int, is_write: bool) -> int:
        """Serialized access latency (sequential interpreter)."""
        start, done = self.issue(now, addr, width, is_write)
        return done - now

    # ------------------------------------------------------------------

    def _acquire_lsq(self, now: int) -> int:
        # Occupancy limit: the LSQ holds at most lsq_entries in flight.
        if len(self._inflight) >= self.config.lsq_entries:
            self._inflight.sort()
            free_at = self._inflight[-self.config.lsq_entries]
            now = max(now, free_at)
            self._inflight = [t for t in self._inflight if t > now]
        # Injected arbitration hiccup: the access waits before bidding.
        if self.faults is not None:
            stall = self.faults.lsq_stall()
            self.stats.injected_cycles += stall
            now += stall
        # One access per port per cycle.
        port = min(range(len(self._lsq_free)), key=lambda i: self._lsq_free[i])
        start = max(now, self._lsq_free[port])
        self.stats.port_stall_cycles += start - now
        self._lsq_free[port] = start + 1
        if self.probes is not None and self.probes.lsq is not None:
            self.probes.lsq(now, len(self._inflight), start - now)
        return start

    def _latency(self, start: int, addr: int,
                 width: int) -> tuple[int, str, bool]:
        """(latency, hierarchy level that served it, tlb missed?)."""
        latency = 0
        tlb_miss = not self._tlb.lookup(addr)
        if tlb_miss:
            self.stats.tlb_misses += 1
            latency += self.config.tlb_miss + self._injected("tlb")
        if self._l1.lookup(addr):
            self.stats.l1_hits += 1
            return (latency + self.config.l1_hit + self._injected("l1"),
                    "l1", tlb_miss)
        latency += self.config.l1_hit
        if self._l2.lookup(addr):
            self.stats.l2_hits += 1
            return (latency + self.config.l2_hit + self._injected("l2"),
                    "l2", tlb_miss)
        latency += self.config.l2_hit
        latency += self._injected("mem")
        # Line fill from memory: first word after mem_latency, the rest of
        # the line streams at word_interval; dual-ported DRAM arbitration.
        self.stats.mem_accesses += 1
        words = max(1, self.config.l1_line // 8)
        fill = self.config.mem_latency + (words - 1) * self.config.mem_word_interval
        port = min(range(len(self._mem_free)), key=lambda i: self._mem_free[i])
        begin = max(start + latency, self._mem_free[port])
        self._mem_free[port] = begin + words * self.config.mem_word_interval
        return (begin - start) + fill, "mem", tlb_miss

    def reset(self) -> None:
        self.stats = MemoryStats()
        self._l1.reset()
        self._l2.reset()
        self._tlb = _Tlb(self.config.tlb_entries, self.config.page_size)
        self._lsq_free = [0] * max(1, self.config.lsq_ports)
        self._mem_free = [0] * max(1, self.config.mem_ports)
        self._inflight = []
