"""Per-operation latencies, in cycles.

The paper assigns each hardware operator "the same latency as in a pisa
architecture SimpleScalar simulator" (§7.3). These values follow
SimpleScalar's default functional-unit latencies: single-cycle integer ALU
ops, 3-cycle integer multiply, 20-cycle divide, 2/4/12-cycle FP
add/multiply/divide. Memory-operation latency is *not* listed here — loads
and stores are timed by the memory system model.
"""

from __future__ import annotations

from repro.frontend import types as ty

INT_ALU = 1
INT_MUL = 3
INT_DIV = 20
FLOAT_ADD = 2
FLOAT_MUL = 4
FLOAT_DIV = 12

# Dataflow plumbing nodes (mux, merge, eta, combine) are wires plus a
# little steering logic in hardware; they forward in the same cycle.
WIRE = 0


def binop_latency(op: str, type_: ty.Type) -> int:
    if isinstance(type_, ty.FloatType):
        if op in ("add", "sub"):
            return FLOAT_ADD
        if op == "mul":
            return FLOAT_MUL
        if op == "div":
            return FLOAT_DIV
        return FLOAT_ADD  # comparisons
    if op == "mul":
        return INT_MUL
    if op in ("div", "rem"):
        return INT_DIV
    return INT_ALU


def unop_latency(op: str, type_: ty.Type) -> int:
    if isinstance(type_, ty.FloatType) and op == "neg":
        return FLOAT_ADD
    return INT_ALU


def cast_latency(from_type: ty.Type, to_type: ty.Type) -> int:
    if isinstance(from_type, ty.FloatType) or isinstance(to_type, ty.FloatType):
        return FLOAT_ADD
    return INT_ALU
