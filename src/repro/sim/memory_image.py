"""A byte-addressable memory image shared by both interpreters.

Memory objects (globals, string literals, and stack slots of the flattened
program) are laid out once; both interpreters then read and write through
integer addresses, which is what makes pointer aliasing behave identically
in the oracle and in the dataflow simulator.

Address 0 up to ``NULL_GUARD`` is never mapped, so null-pointer dereferences
fault deterministically.
"""

from __future__ import annotations

import math
import struct

from repro.errors import MemoryFault
from repro.frontend import ast
from repro.frontend import types as ty

NULL_GUARD = 0x1000
ALIGNMENT = 8
DEFAULT_EXTERN_ELEMENTS = 1024


class MemoryImage:
    """Flat little-endian memory with named object layout."""

    def __init__(self, objects: list[ast.Symbol] | None = None,
                 extern_elements: int = DEFAULT_EXTERN_ELEMENTS):
        self._layout: dict[ast.Symbol, tuple[int, int]] = {}
        self._top = NULL_GUARD
        self.extern_elements = extern_elements
        self._data = bytearray()
        for symbol in objects or []:
            self.allocate(symbol)

    # ------------------------------------------------------------------
    # Layout

    def allocate(self, symbol: ast.Symbol) -> int:
        """Allocate (and zero/initialize) storage for a memory object."""
        if symbol in self._layout:
            return self._layout[symbol][0]
        size = self._object_size(symbol)
        base = _align(self._top, ALIGNMENT)
        self._top = base + size
        self._layout[symbol] = (base, size)
        needed = self._top - NULL_GUARD
        if needed > len(self._data):
            self._data.extend(b"\0" * (needed - len(self._data)))
        self._initialize(symbol, base)
        return base

    def _object_size(self, symbol: ast.Symbol) -> int:
        type_ = symbol.type
        if isinstance(type_, ty.ArrayType):
            length = type_.length
            if length is None:
                length = self.extern_elements
            return max(1, length * type_.element.size)
        return max(1, type_.size)

    def _initialize(self, symbol: ast.Symbol, base: int) -> None:
        values = symbol.init_values
        if not values:
            return
        if isinstance(symbol.type, ty.ArrayType):
            element = symbol.type.element
            for index, value in enumerate(values):
                self.write(base + index * element.size, value, element)
        else:
            self.write(base, values[0], symbol.type)

    def addr_of(self, symbol: ast.Symbol) -> int:
        if symbol not in self._layout:
            raise MemoryFault(f"object {symbol.name!r} was never allocated")
        return self._layout[symbol][0]

    @property
    def size(self) -> int:
        return self._top

    # ------------------------------------------------------------------
    # Access

    def _check(self, addr: int, size: int) -> int:
        addr &= 2**64 - 1
        if addr < NULL_GUARD:
            raise MemoryFault("null or near-null dereference", addr)
        if addr + size > self._top:
            raise MemoryFault("access beyond allocated memory", addr)
        return addr - NULL_GUARD

    def read(self, addr: int, type_: ty.Type):
        """Read a typed value from ``addr``."""
        size = type_.size if not type_.is_pointer else 8
        offset = self._check(addr, size)
        raw = bytes(self._data[offset:offset + size])
        if isinstance(type_, ty.FloatType):
            return struct.unpack("<f" if size == 4 else "<d", raw)[0]
        value = int.from_bytes(raw, "little")
        if isinstance(type_, ty.IntType):
            return type_.wrap(value)
        return value  # pointer

    def write(self, addr: int, value, type_: ty.Type) -> None:
        """Write a typed value to ``addr``."""
        size = type_.size if not type_.is_pointer else 8
        offset = self._check(addr, size)
        if isinstance(type_, ty.FloatType):
            if math.isnan(value):
                raw = struct.pack("<f" if size == 4 else "<d", math.nan)
            else:
                raw = struct.pack("<f" if size == 4 else "<d", float(value))
        else:
            mask = (1 << (size * 8)) - 1
            raw = (int(value) & mask).to_bytes(size, "little")
        self._data[offset:offset + size] = raw

    # ------------------------------------------------------------------
    # Convenience for tests and workloads

    def read_array(self, symbol: ast.Symbol, count: int | None = None,
                   element: ty.Type | None = None) -> list:
        type_ = symbol.type
        assert isinstance(type_, ty.ArrayType)
        element = element or type_.element
        if count is None:
            count = type_.length or self.extern_elements
        base = self.addr_of(symbol)
        return [self.read(base + i * element.size, element) for i in range(count)]

    def write_array(self, symbol: ast.Symbol, values, element: ty.Type | None = None) -> None:
        type_ = symbol.type
        assert isinstance(type_, ty.ArrayType)
        element = element or type_.element
        base = self.addr_of(symbol)
        for index, value in enumerate(values):
            self.write(base + index * element.size, value, element)

    def snapshot(self) -> bytes:
        """The raw contents, for differential comparison."""
        return bytes(self._data)

    def clone(self) -> "MemoryImage":
        """An independent copy with the same layout and contents.

        Batched execution lays a program's memory out once and clones it
        per input context — one layout pass, N isolated images.
        """
        image = MemoryImage.__new__(MemoryImage)
        image._layout = dict(self._layout)
        image._top = self._top
        image.extern_elements = self.extern_elements
        image._data = bytearray(self._data)
        return image


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
