"""repro — a reproduction of CASH/Pegasus spatial computation.

A from-scratch Python implementation of the compiler and evaluation
infrastructure of Budiu & Goldstein's *Optimizing Memory Accesses for
Spatial Computation* (the memory subsystem of the ASPLOS 2004 *Spatial
Computation* line of work): a MiniC frontend, the Pegasus dataflow IR with
token-based memory SSA, the full set of memory optimizations, loop
pipelining including loop decoupling with token generators, and dataflow
plus program-order simulators over a two-level cache memory model.

Entry point: :func:`compile_minic`.
"""

from repro.api import CompiledProgram, compile_minic, OPT_LEVELS
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = ["compile_minic", "CompiledProgram", "OPT_LEVELS", "ReproError",
           "CompilerDriver", "PipelineConfig", "CompilationReport",
           "CompilationCache", "__version__"]


def __getattr__(name):
    # The pipeline package imports repro.api; exposing it lazily keeps
    # ``import repro`` cycle-free while letting callers write
    # ``repro.CompilerDriver`` / ``repro.PipelineConfig`` directly.
    if name in ("CompilerDriver", "PipelineConfig", "CompilationReport",
                "CompilationCache"):
        import repro.pipeline as pipeline
        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
