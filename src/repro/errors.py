"""Exception hierarchy for the repro package.

Every error raised by the compiler, the analyses, or the simulators derives
from :class:`ReproError`, so callers can catch one type at the API boundary.
The subclasses partition failures by pipeline stage, which keeps diagnostics
actionable: a :class:`ParseError` points at source text, a
:class:`PegasusError` points at a malformed graph, a :class:`SimulationError`
points at run-time behaviour.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A (line, column) position inside a MiniC source file.

    Lines and columns are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column", "filename")

    def __init__(self, line: int, column: int, filename: str = "<input>"):
        self.line = line
        self.column = column
        self.filename = filename

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column, self.filename) == (
            other.line,
            other.column,
            other.filename,
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.filename))


class FrontendError(ReproError):
    """An error detected while processing MiniC source text."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in the source text."""


class ParseError(FrontendError):
    """Source text does not conform to the MiniC grammar."""


class SemanticError(FrontendError):
    """Well-formed syntax with an invalid meaning (types, scopes, lvalues)."""


class LoweringError(ReproError):
    """AST could not be lowered to the three-address CFG."""


class InlineError(ReproError):
    """Call graph cannot be flattened for spatial compilation (recursion)."""


class PegasusError(ReproError):
    """A Pegasus graph violates a structural invariant."""


class OptimizationError(ReproError):
    """An optimization pass produced or encountered an inconsistent state."""


class SimulationError(ReproError):
    """The dataflow or sequential simulator hit an invalid run-time state."""


class DeadlockError(SimulationError):
    """The dataflow simulation stopped making progress before completion."""

    def __init__(self, message: str, cycle: int, pending: list[str] | None = None):
        self.cycle = cycle
        self.pending = pending or []
        detail = f" at cycle {cycle}"
        if self.pending:
            detail += "; waiting nodes: " + ", ".join(self.pending[:8])
        super().__init__(message + detail)


class MemoryFault(SimulationError):
    """An out-of-bounds or unmapped memory access during simulation."""

    def __init__(self, message: str, address: int | None = None):
        self.address = address
        if address is not None:
            message = f"{message} (address {address:#x})"
        super().__init__(message)


class WorkloadError(ReproError):
    """A benchmark program failed its built-in self-check."""
