"""Exception hierarchy for the repro package.

Every error raised by the compiler, the analyses, or the simulators derives
from :class:`ReproError`, so callers can catch one type at the API boundary.
The subclasses partition failures by pipeline stage, which keeps diagnostics
actionable: a :class:`ParseError` points at source text, a
:class:`PegasusError` points at a malformed graph, a :class:`SimulationError`
points at run-time behaviour.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A (line, column) position inside a MiniC source file.

    Lines and columns are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column", "filename")

    def __init__(self, line: int, column: int, filename: str = "<input>"):
        self.line = line
        self.column = column
        self.filename = filename

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column, self.filename) == (
            other.line,
            other.column,
            other.filename,
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.filename))


class FrontendError(ReproError):
    """An error detected while processing MiniC source text."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in the source text."""


class ParseError(FrontendError):
    """Source text does not conform to the MiniC grammar."""


class SemanticError(FrontendError):
    """Well-formed syntax with an invalid meaning (types, scopes, lvalues)."""


class LoweringError(ReproError):
    """AST could not be lowered to the three-address CFG."""


class InlineError(ReproError):
    """Call graph cannot be flattened for spatial compilation (recursion)."""


class PegasusError(ReproError):
    """A Pegasus graph violates a structural invariant."""


class OptimizationError(ReproError):
    """An optimization pass produced or encountered an inconsistent state."""


class SimulationError(ReproError):
    """The dataflow or sequential simulator hit an invalid run-time state."""


class DeadlockError(SimulationError):
    """The dataflow simulation stopped making progress before completion.

    ``pending`` holds structured wait-for entries (one per blocked node;
    see :class:`repro.resilience.forensics.BlockedNode`) rather than
    pre-truncated reprs, and ``report`` carries the full
    :class:`repro.resilience.forensics.DeadlockReport` when the simulator
    ran the wait-for analysis.
    """

    def __init__(self, message: str, cycle: int, pending: list | None = None,
                 report=None):
        self.cycle = cycle
        self.pending = pending or []
        self.report = report
        detail = f" at cycle {cycle}"
        if self.pending:
            detail += "; waiting nodes: " + ", ".join(
                str(entry) for entry in self.pending[:8])
            if len(self.pending) > 8:
                detail += f", ... ({len(self.pending) - 8} more)"
        super().__init__(message + detail)


class EventLimitError(SimulationError):
    """The event budget ran out before the graph produced its return.

    Distinguishes livelocks (a small set of nodes — typically an eta/mu
    cycle — firing forever) from legitimately long runs: ``hot_nodes``
    lists the top-k hottest nodes by fire count.
    """

    def __init__(self, message: str, event_limit: int, cycle: int,
                 hot_nodes: list[tuple[str, int]] | None = None):
        self.event_limit = event_limit
        self.cycle = cycle
        self.hot_nodes = hot_nodes or []
        if self.hot_nodes:
            hottest = ", ".join(f"{label} x{count}"
                                for label, count in self.hot_nodes)
            message += f"; hottest nodes: {hottest}"
        super().__init__(message)


class SimulationTimeout(SimulationError):
    """A simulation exceeded its wall-clock budget (cooperative check)."""

    def __init__(self, message: str, limit: float, elapsed: float):
        self.limit = limit
        self.elapsed = elapsed
        super().__init__(f"{message} (wall limit {limit:.1f}s, "
                         f"elapsed {elapsed:.1f}s)")


class MemoryFault(SimulationError):
    """An out-of-bounds or unmapped memory access during simulation."""

    def __init__(self, message: str, address: int | None = None):
        self.address = address
        if address is not None:
            message = f"{message} (address {address:#x})"
        super().__init__(message)


class WorkloadError(ReproError):
    """A benchmark program failed its built-in self-check."""


class ParallelCompilationError(ReproError):
    """One or more kernels failed to compile in a parallel batch.

    Raised only after the batch drains, so one bad kernel cannot destroy
    the compilations of its neighbours. ``failures`` maps
    ``(kernel, level)`` to the exception that killed it.
    """

    def __init__(self, failures: dict[tuple[str, str], BaseException]):
        self.failures = dict(failures)
        parts = [f"{name}/{level}: {error}"
                 for (name, level), error in sorted(
                     self.failures.items(), key=lambda item: item[0])]
        count = len(self.failures)
        super().__init__(
            f"{count} kernel compilation{'s' if count != 1 else ''} "
            "failed: " + "; ".join(parts))
