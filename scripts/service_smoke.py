"""CI smoke for the compile service (`.github/workflows/ci.yml`,
``service-smoke`` job).

Three acts against a real ``repro serve`` subprocess:

1. 16 concurrent mixed requests — half identical — all succeed, the
   telemetry provenance proves the identical half cost exactly one
   compile execution (one ``cache_status="miss"`` record), and a
   ``/v1/metrics`` scrape shows live dedup and batch counters agreeing;
2. a drained shutdown exits 0 after finishing in-flight work;
3. a second server is SIGKILLed mid-request and the client surfaces a
   clean ServiceError instead of hanging or mis-parsing.

Import-safe on purpose: the server's process pool uses a forkserver
context, whose workers re-import the main module.
"""

import os
import subprocess
import sys
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.observe.metrics import parse_prometheus, sum_series  # noqa: E402
from repro.observe.store import TelemetryStore            # noqa: E402
from repro.service.client import ServiceClient            # noqa: E402
from repro.service.protocol import ServiceError           # noqa: E402

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""

OTHER_SOURCE = SOURCE.replace("i * 2", "i * 3").replace("kernel", "other")

SPIN_SOURCE = """
int spin(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { s = s + i; }
    return s;
}
"""


def start_server(root: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(root / "cache"),
         "--telemetry-dir", str(root / "telemetry"),
         "--drain-grace", "15"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    line = proc.stdout.readline()
    assert "listening on" in line, f"server did not start: {line!r}"
    port = int(line.split("listening on", 1)[1]
               .split()[0].rsplit(":", 1)[1])
    print(f"server up on port {port}")
    return proc, port


def mixed_load_with_dedup(root: Path, port: int) -> None:
    """16 concurrent requests, 8 identical + 8 distinct; prove dedup."""

    def one(i: int):
        client = ServiceClient(port=port, client_id=f"smoke-{i}")
        if i < 8:   # the identical half
            return client.simulate(SOURCE, "kernel", args=[6], wait=True)
        return client.simulate(OTHER_SOURCE, "other", args=[i - 4],
                               wait=True)

    with ThreadPoolExecutor(max_workers=16) as pool:
        outcomes = list(pool.map(one, range(16)))

    assert len(outcomes) == 16
    identical = outcomes[:8]
    assert {o.value for o in identical} == {30}, identical
    assert len({o.request_id for o in outcomes}) == 16, \
        "request ids must be unique (no duplicated jobs)"
    for i, outcome in enumerate(outcomes[8:], start=8):
        n = i - 4
        assert outcome.value == 3 * n * (n - 1) // 2, (n, outcome.value)

    # Provenance: the identical half cost exactly one compile.
    store = TelemetryStore(root / "telemetry")
    records = store.records()
    misses = [r for r in records
              if r.kind == "compile" and r.entry == "kernel"
              and (r.compilation or {}).get("cache_status") == "miss"]
    assert len(misses) == 1, \
        f"{len(misses)} miss records for 8 identical submissions"
    coalesced = [r for r in records
                 if r.kind == "compile" and r.entry == "kernel"
                 and (r.compilation or {}).get("cache_status")
                 in ("deduped", "warm")]
    assert len(coalesced) == 7, f"{len(coalesced)} coalesced records"
    health = ServiceClient(port=port).health()
    assert health["stats"]["failed"] == 0
    assert health["stats"]["compiles_executed"] == 2  # kernel + other

    # The live metrics endpoint must agree with the provenance trail.
    text, content_type = ServiceClient(port=port).metrics()
    assert content_type.startswith("text/plain"), content_type
    assert "version=0.0.4" in content_type, content_type
    parsed = parse_prometheus(text)
    # Only jobs count as requests; health and metrics scrapes do not.
    assert sum_series(parsed, "repro_requests_total") == 16
    dedup = sum_series(parsed, "repro_compile_dedup_total")
    assert dedup > 0, "no dedup counted on /v1/metrics"
    batches = sum_series(parsed, "repro_compile_batches_total")
    assert batches > 0, "no compile batches counted on /v1/metrics"
    assert sum_series(parsed, "repro_compiles_executed_total") == 2
    print("mixed load ok: 16/16 completed, dedup proven "
          f"(1 miss, {len(coalesced)} coalesced), metrics scrape ok "
          f"(dedup={dedup:g}, batches={batches:g})")


def drained_shutdown(proc, port: int) -> None:
    reply = ServiceClient(port=port).shutdown(drain=True)
    assert reply["ok"] is True
    out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 0, \
        f"drained shutdown exited {proc.returncode}:\n{out}"
    assert "drained" in out
    print("drained shutdown ok: exit 0")


def kill_mid_request(root: Path) -> None:
    proc, port = start_server(root)
    try:
        client = ServiceClient(port=port, timeout=60)
        client.compile(SPIN_SOURCE, "spin")
        killer = threading.Timer(1.0, proc.kill)
        killer.start()
        try:
            client.simulate(SPIN_SOURCE, "spin", args=[500_000_000],
                            event_limit=10**15)
        except ServiceError as error:
            message = str(error)
            assert ("ended before the job completed" in message
                    or "failed mid-stream" in message), message
            print(f"kill mid-request ok: clean client error ({message})")
        else:
            raise AssertionError("client reported success from a "
                                 "SIGKILLed server")
        finally:
            killer.cancel()
        assert proc.wait(timeout=15) != 0
    finally:
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=15)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="svc-smoke-") as tmp:
        root = Path(tmp)
        proc, port = start_server(root)
        try:
            mixed_load_with_dedup(root, port)
            drained_shutdown(proc, port)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)
        kill_mid_request(root / "second")
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
